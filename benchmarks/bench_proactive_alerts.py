"""E15 — Proactive invariant alerts vs client polling.

Extension in the spirit of the real-time tools the paper cites
(Veriflow): clients subscribe to the isolation invariant and RVaaS
pushes a signed violation notice the moment a configuration change
breaks it.  The experiment measures time-to-detection against the
alternative the base paper offers — the client polling with isolation
queries — across polling intervals.

Expected shape: push alerts land at event latency (milliseconds),
independent of any interval; polling detection averages half the poll
interval and is bounded by it.
"""

import pytest

from repro.attacks import JoinAttack
from repro.core.queries import IsolationQuery
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


def push_detection_latency(seed=101) -> float:
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=seed
    )
    bed.service.watch_isolation("alice")
    alerts = []
    bed.clients["alice"].on_notice(alerts.append)
    t0 = bed.network.sim.now
    bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
    bed.run(1.0)
    assert alerts, "watch did not fire"
    return alerts[0].raised_at - t0


def polling_detection_latency(poll_interval: float, attack_phase: float, seed=102) -> float:
    """Client polls isolation every ``poll_interval``; attack lands at
    ``attack_phase`` into the polling cycle."""
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=seed
    )
    sim = bed.network.sim
    sim.run_until(sim.now + attack_phase)
    t0 = sim.now
    bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
    # Poll until violated.
    deadline = t0 + 10 * poll_interval
    next_poll = (t0 - attack_phase) + poll_interval
    while sim.now < deadline:
        sim.run_until(max(next_poll, sim.now))
        answer = bed.service.answer_locally("alice", IsolationQuery())
        if not answer.isolated:
            return sim.now - t0
        next_poll += poll_interval
    raise AssertionError("polling never detected the violation")


def test_push_vs_polling_detection_latency(benchmark, report):
    rep = report("E15", "Time to detection: pushed alerts vs client polling")
    push_ms = push_detection_latency() * 1000
    rows = [("push alert (watch mode)", "-", f"{push_ms:.1f}")]
    for interval in (1.0, 5.0, 30.0):
        # Average over attack phases at 1/4, 1/2, 3/4 of the cycle.
        samples = [
            polling_detection_latency(interval, phase * interval)
            for phase in (0.25, 0.5, 0.75)
        ]
        mean_ms = sum(samples) / len(samples) * 1000
        rows.append(
            (f"client polls every {interval:g}s", f"{interval:g}", f"{mean_ms:.1f}")
        )
    rep.table(["strategy", "poll_interval_s", "mean_detection_ms(virtual)"], rows)
    rep.line()
    rep.line("shape check: push detection is at event latency (~2 ms) and")
    rep.line("independent of any interval; polling averages ~interval/2 and")
    rep.line("scales linearly. The push path reuses the same verification")
    rep.line("engine — the gain is purely architectural.")
    rep.finish()

    assert push_ms < 50
    polling_means = [float(row[2]) for row in rows[1:]]
    assert polling_means == sorted(polling_means)
    assert polling_means[0] > push_ms

    benchmark(lambda: push_detection_latency())
