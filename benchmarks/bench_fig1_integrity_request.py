"""E1 — Figure 1: the integrity-request flow, quantified.

The paper's Fig. 1 shows the four protocol steps of a client query:
(1) integrity-request packet, (2) Packet-In interception, (3) analysis +
Packet-Out of auth requests, (4) auth-request delivery.  This benchmark
runs the full flow on growing topologies and reports the in-simulation
latency and the control-channel message budget — substantiating the
claims that RVaaS has "low resource requirements" and "no strict latency
requirements".
"""

import pytest

from repro.core.queries import ReachableDestinationsQuery
from repro.dataplane.topologies import isp_topology, linear_topology
from repro.testbed import build_testbed

TOPOLOGIES = [
    ("linear-3", lambda: linear_topology(3, clients=["alice", "bob"])),
    ("linear-6", lambda: linear_topology(6, clients=["alice", "bob"])),
    ("linear-9", lambda: linear_topology(9, clients=["alice", "bob"])),
    ("isp-5", lambda: isp_topology(clients=["alice", "bob"])),
]


def run_query_cycle(bed):
    handle = bed.ask("alice", ReachableDestinationsQuery())
    assert handle.response is not None
    return handle


def test_fig1_integrity_request_flow(benchmark, report):
    rep = report("E1", "Fig. 1 integrity-request flow: latency & messages")
    rows = []
    for name, factory in TOPOLOGIES:
        bed = build_testbed(factory(), isolate_clients=True, seed=3)
        messages_before = bed.service.control_message_count()
        handle = run_query_cycle(bed)
        messages_after = bed.service.control_message_count()
        auth = handle.response.answer.auth
        rows.append(
            (
                name,
                len(bed.topology.switches),
                f"{handle.latency * 1000:.1f}",
                messages_after - messages_before,
                auth.requests_issued,
                auth.replies_received,
            )
        )
    rep.table(
        [
            "topology",
            "switches",
            "latency_ms(virtual)",
            "ctrl_msgs",
            "auth_issued",
            "auth_recv",
        ],
        rows,
    )
    rep.line()
    rep.line("shape check: latency is dominated by the fixed auth timeout")
    rep.line("(250 ms) and message count grows with reachable endpoints,")
    rep.line("not with topology size — the service itself is off-path.")
    rep.finish()

    # Wall-clock cost of one complete in-band query cycle (fresh bed
    # state per round via repeated queries on the same deployment).
    bed = build_testbed(isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=3)
    benchmark(lambda: run_query_cycle(bed))


def test_fig1_interception_is_immediate(benchmark, report):
    """Step 2: the Packet-In reaches RVaaS at control-channel latency."""
    rep = report("E1b", "Fig. 1 step 2: interception latency")
    bed = build_testbed(isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=3)
    t_sent = bed.network.sim.now
    handle = bed.clients["alice"].submit(ReachableDestinationsQuery(authenticate=False))
    while not handle.done:
        bed.network.sim.step()
    t_answered = bed.network.sim.now
    rep.table(
        ["phase", "virtual_ms"],
        [
            ("query sent at", f"{t_sent * 1000:.2f}"),
            ("answered at", f"{t_answered * 1000:.2f}"),
            ("round trip", f"{(t_answered - t_sent) * 1000:.2f}"),
        ],
    )
    rep.line()
    rep.line("without an auth round the full cycle completes in ~2 ms of")
    rep.line("virtual time: host link + interception + analysis + reply.")
    rep.finish()
    assert t_answered - t_sent < 0.05
    benchmark(
        lambda: bed.ask("alice", ReachableDestinationsQuery(authenticate=False))
    )
