"""E2 — Figure 2: the authentication-reply flow, quantified.

Fig. 2 shows the return half of the protocol: hosts send signed Auth
replies, the ingress switches punt them back to RVaaS, RVaaS aggregates
the evidence and delivers the signed integrity reply.  The benchmark
measures reply completeness (including with silent/untrusted endpoints —
the case the issued-request count exposes) and the aggregation cost.
"""

import pytest

from repro.core.queries import IsolationQuery
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


def test_fig2_auth_reply_collection(benchmark, report):
    rep = report("E2", "Fig. 2 auth-reply flow: completeness & evidence")
    rows = []
    for silent in ([], ["h_par1"], ["h_par1", "h_fra1"]):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]),
            isolate_clients=True,
            seed=4,
            silent_hosts=silent,
        )
        handle = bed.ask("alice", IsolationQuery())
        auth = handle.response.answer.auth
        rows.append(
            (
                len(silent),
                auth.requests_issued,
                auth.replies_received,
                auth.complete,
                ",".join(e.host for e in auth.silent_endpoints) or "-",
            )
        )
    rep.table(
        ["silent_hosts", "issued", "received", "complete", "silent_endpoints"],
        rows,
    )
    rep.line()
    rep.line("shape check: the issued-request count lets the client detect")
    rep.line('"cases where some access points did not respond" (paper §IV-B1).')
    rep.finish()

    assert rows[0][3] is True and rows[1][3] is False

    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=4
    )
    benchmark(lambda: bed.ask("alice", IsolationQuery()))


def test_fig2_reply_verification_cost(benchmark, report):
    """Isolated cost of verifying one signed auth reply (host signature)."""
    import random

    from repro.core.protocol import AuthReply, sign_auth_reply, verify_auth_reply
    from repro.crypto.keys import generate_keypair

    keys = generate_keypair("host", rng=random.Random(1))
    reply = sign_auth_reply(
        AuthReply(host="h", client="c", nonce=1, round_id=1), keys.private
    )
    result = benchmark(lambda: verify_auth_reply(reply, keys.public))
    rep = report("E2b", "per-reply signature verification")
    rep.line("verify_auth_reply is the per-endpoint unit of work in the")
    rep.line("collection phase; see pytest-benchmark timing table.")
    rep.finish()
    assert result is True
