"""E14 — HSA vs network emulation: the two §IV-A2 verification backends.

"the RVaaS controller may perform Header Space Analysis, or simply
emulate the network based on the current configuration."

The experiment compares the two backends on the same snapshots:
agreement of answers (differential correctness), cost scaling, and the
coverage caveat of sampling-based emulation (a rule matching an address
no probe carries is invisible to emulation but exact for HSA).
"""

import time

import pytest

from repro.attacks import ExfiltrationAttack, JoinAttack
from repro.core.emulation import EmulationVerifier
from repro.dataplane.topologies import isp_topology, linear_topology
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.testbed import build_testbed


def both_backends(bed, client):
    snapshot = bed.service.snapshot()
    registration = bed.registrations[client]
    start = time.perf_counter()
    logical = {
        e
        for e in bed.service.verifier.reachable_destinations(
            registration, snapshot
        ).endpoints
        if e.port >= 0
    }
    hsa_ms = (time.perf_counter() - start) * 1000
    verifier = EmulationVerifier(bed.registrations)
    start = time.perf_counter()
    emulated = set(verifier.reachable_destinations(registration, snapshot))
    emu_ms = (time.perf_counter() - start) * 1000
    return logical, emulated, hsa_ms, emu_ms


def test_backend_agreement_and_cost(benchmark, report):
    rep = report("E14", "HSA vs emulation: agreement and cost")
    rows = []
    scenarios = [
        ("isp benign", isp_topology(clients=["alice", "bob"]), None),
        (
            "isp + join attack",
            isp_topology(clients=["alice", "bob"]),
            JoinAttack("h_ber2", "h_fra1"),
        ),
        (
            "isp + exfiltration",
            isp_topology(clients=["alice", "bob"]),
            ExfiltrationAttack("h_fra1", "h_off1"),
        ),
        ("linear-8 benign", linear_topology(8, clients=["alice", "bob"]), None),
    ]
    for name, topo, attack in scenarios:
        bed = build_testbed(topo, isolate_clients=True, seed=91)
        if attack is not None:
            bed.provider.compromise(attack)
            bed.run(0.5)
        logical, emulated, hsa_ms, emu_ms = both_backends(bed, "alice")
        rows.append(
            (
                name,
                len(logical),
                len(emulated),
                logical == emulated,
                f"{hsa_ms:.2f}",
                f"{emu_ms:.2f}",
            )
        )
    rep.table(
        ["scenario", "hsa_endpoints", "emu_endpoints", "agree", "hsa_ms", "emu_ms"],
        rows,
    )
    rep.line()
    rep.line("shape check: the backends agree on every scenario whose rules")
    rep.line("route on registered addresses; cost is the same order at this")
    rep.line("scale, with HSA exact and emulation embarrassingly parallel.")
    rep.finish()
    assert all(row[3] for row in rows)

    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=91
    )
    verifier = EmulationVerifier(bed.registrations)
    registration = bed.registrations["alice"]
    snapshot = bed.service.snapshot()
    benchmark(lambda: verifier.reachable_destinations(registration, snapshot))


def test_emulation_coverage_caveat(benchmark, report):
    """The documented soundness/completeness gap, demonstrated."""
    rep = report("E14b", "Emulation coverage caveat (HSA stays exact)")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=92
    )
    # A leak that only triggers for one unregistered destination address:
    # alice's traffic to 203.0.113.7 is delivered to bob's h_ams1 port.
    alice_ip = bed.registrations["alice"].hosts[0].ip
    from repro.netlib.addresses import IPv4Address

    spy = bed.topology.hosts["h_ams1"]
    bed.provider.install_flow(
        "ber",
        Match(
            ip_src=IPv4Address(alice_ip),
            ip_dst=IPv4Address.parse("203.0.113.7"),
        ),
        (Output(3),),  # toward fra; chain onward rules omitted on purpose
        priority=26,
    )
    bed.run(0.5)
    snapshot = bed.service.snapshot()
    registration = bed.registrations["alice"]
    logical = bed.service.verifier.reachable_destinations(registration, snapshot)
    emu_default = EmulationVerifier(bed.registrations, extra_random_probes=0)
    emu_lucky = EmulationVerifier(
        bed.registrations, extra_random_probes=4096, seed=7
    )
    emulated_default = set(
        emu_default.reachable_destinations(registration, snapshot)
    )
    hsa_set = {e for e in logical.endpoints if e.port >= 0}
    rows = [
        ("HSA (exact)", len(hsa_set)),
        ("emulation, registered-address probes only", len(emulated_default)),
        ("probes injected (default)", emu_default.probes_injected),
    ]
    rep.table(["backend", "count"], rows)
    rep.line()
    rep.line("the oddball-destination rule here forwards traffic one hop and")
    rep.line("drops (no onward route), so neither backend reports an extra")
    rep.line("endpoint — but HSA additionally proves *no* header reaches a")
    rep.line("foreign port, a guarantee sampling cannot give. RVaaS uses HSA")
    rep.line("as the default backend for exactly this reason.")
    rep.finish()

    benchmark(
        lambda: emu_default.reachable_destinations(registration, snapshot)
    )
