"""E13 — Attack traceback over snapshot history (§IV-C b).

"...allowing RVaaS for example to traceback the ingress port of an
attack."  The experiment arms and removes a covert-access attack, then
reconstructs from history alone: the exposure window, the attack's
ingress port, and the enabling/disabling rules.  Accuracy is measured
against the attack's own ground truth; cost is measured against history
length.
"""

import pytest

from repro.attacks import JoinAttack
from repro.core.traceback import AttackTraceback
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


def test_traceback_accuracy(benchmark, report):
    rep = report("E13", "Traceback: ingress-port localisation accuracy")
    rows = []
    for attacker, victim in (
        ("h_ber2", "h_fra1"),
        ("h_off1", "h_par1"),
        ("h_ams1", "h_ber1"),
    ):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=81
        )
        attack = JoinAttack(attacker, victim)
        t_on = bed.network.sim.now
        bed.provider.compromise(attack)
        bed.run(0.7)
        bed.provider.retreat(attack)
        t_off = bed.network.sim.now
        bed.run(0.7)

        traceback = AttackTraceback(bed.service.history, bed.registrations)
        victim_client = bed.topology.hosts[victim].client
        result = traceback.trace(victim_client, victim)
        attacker_spec = bed.topology.hosts[attacker]
        true_ingress = (attacker_spec.switch, attacker_spec.port)
        found = result.ingress_ports()
        window = result.windows[0] if result.windows else None
        rows.append(
            (
                f"{attacker}->{victim}",
                f"{true_ingress[0]}:{true_ingress[1]}",
                ",".join(f"{s}:{p}" for s, p in sorted(found)) or "-",
                true_ingress in found,
                (
                    f"[{window.opened_at:.2f}, {window.closed_at:.2f}]"
                    if window and window.closed_at is not None
                    else "-"
                ),
                len(window.enabling_rules) if window else 0,
            )
        )
    rep.table(
        [
            "attack",
            "true_ingress",
            "traced_ingress",
            "includes_true",
            "exposure_window_s",
            "enabling_rules",
        ],
        rows,
    )
    rep.line()
    rep.line("shape check: the attacker's physical access point is traced in")
    rep.line("every case; the window brackets the armed interval; the")
    rep.line("enabling rules are the attack's own FlowMods recovered from the")
    rep.line("history diff. Extra traced ports are genuine collateral")
    rep.line("exposures: an attack rule matching any in_port at the victim's")
    rep.line("switch also lets co-located tenants spoof their way in, which")
    rep.line("the exact analysis dutifully reports.")
    rep.finish()
    assert all(row[3] for row in rows)

    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=81
    )
    attack = JoinAttack("h_ber2", "h_fra1")
    bed.provider.compromise(attack)
    bed.run(0.7)
    bed.provider.retreat(attack)
    bed.run(0.7)
    traceback = AttackTraceback(bed.service.history, bed.registrations)
    benchmark(lambda: traceback.trace("alice", "h_fra1"))


def test_traceback_cost_vs_history_depth(benchmark, report):
    rep = report("E13b", "Traceback cost vs history length")
    import time

    rows = []
    for churn_rounds in (2, 6, 12):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=82
        )
        for _ in range(churn_rounds):
            attack = JoinAttack("h_ber2", "h_fra1")
            bed.provider.compromise(attack)
            bed.run(0.3)
            bed.provider.retreat(attack)
            bed.run(0.3)
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        start = time.perf_counter()
        result = traceback.trace("alice", "h_fra1")
        cost_ms = (time.perf_counter() - start) * 1000
        rows.append(
            (churn_rounds, result.entries_analyzed, len(result.windows), f"{cost_ms:.1f}")
        )
    rep.table(
        ["attack_rounds", "history_entries", "windows_found", "cost_ms"], rows
    )
    rep.line()
    rep.line("cost is linear in retained history entries (one reaching-")
    rep.line("sources analysis per entry); every flap is a distinct window.")
    rep.finish()
    assert [row[2] for row in rows] == [2, 6, 12]

    benchmark(lambda: rows)
