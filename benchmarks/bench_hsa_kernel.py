"""E17 — Fast-path HSA kernel vs the naive reference kernel.

The verification sweep — per-host reachability over a full snapshot — is
the inner loop of every RVaaS query, so PR "fast-path HSA kernel"
rebuilt it around indexed rule classifiers, trusted wildcard
construction, shadow-skip subtraction, and an iterative worklist, with
optional parallel fan-out of whole-network sweeps.  This experiment
measures the three kernels on the same snapshots:

* ``serial-naive`` — the frozen pre-rewrite kernel
  (:mod:`repro.hsa.reference`): linear scans, public validating
  constructors, chained subtraction, recursive DFS.
* ``indexed`` — the production kernel, workers=1.
* ``indexed+parallel`` — the production kernel fanning per-host sweeps
  over a thread pool (determinism feature; on a single-core host it
  cannot beat ``indexed`` on wall clock).

Protocol: the snapshot is the verifier's *analysis* snapshot (RVaaS's
own interception rules elided, exactly what production queries analyse);
each timed iteration sweeps every registered host's outbound space over
a freshly compiled network transfer function, so lazy classifier
construction is paid inside the timer (cold cache); the reported number
is the median of the iterations.  Answers are asserted identical across
kernels before any timing is trusted.
"""

import statistics
import time

from repro.core.engine import VerificationEngine
from repro.dataplane.topologies import (
    fat_tree_topology,
    linear_topology,
    waxman_topology,
)
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.parallel import FanOutPool, default_workers
from repro.hsa.reachability import ReachabilityAnalyzer
from repro.hsa.reference import (
    ReferenceReachabilityAnalyzer,
    reference_network_tf,
)
from repro.hsa.wildcard import Wildcard
from repro.testbed import build_testbed

TOPOLOGIES = (
    ("fat-tree-4", lambda: fat_tree_topology(4, clients=["a", "b"]), 5),
    ("waxman-16", lambda: waxman_topology(16, seed=7, clients=["a", "b"]), 5),
    ("linear-32", lambda: linear_topology(32, clients=["a", "b"]), 3),
)


def host_work(bed):
    """Sorted (ingress port, outbound space) pairs for every host."""
    work = []
    for registration in bed.registrations.values():
        for host in registration.hosts:
            work.append(
                (
                    (host.switch, host.port),
                    HeaderSpace.single(
                        Wildcard.from_fields(ip_src=host.ip, vlan_id=0)
                    ),
                )
            )
    return sorted(work, key=lambda entry: entry[0])


def sweep(analyzer, work):
    """One full-snapshot verification: propagate every host's space."""
    zones = []
    for (switch, port), space in work:
        result = analyzer.analyze(switch, port, space)
        zones.extend(
            (z.kind, z.switch, z.port) for z in result.zones
        )
    return zones


def median_cold_ms(make_analyzer, work, repeats):
    """Median sweep time; each repeat gets a freshly compiled kernel."""
    times = []
    zones = None
    for _ in range(repeats):
        analyzer = make_analyzer()
        start = time.perf_counter()
        zones = sweep(analyzer, work)
        times.append((time.perf_counter() - start) * 1000)
    return statistics.median(times), zones


def test_kernel_speedup(benchmark, report):
    rep = report("E17", "Fast-path HSA kernel vs naive reference kernel")
    rows = []
    counter_lines = []
    json_topologies = {}
    workers = max(2, default_workers())
    for name, make_topo, repeats in TOPOLOGIES:
        bed = build_testbed(make_topo(), isolate_clients=True, seed=51)
        # The analysis snapshot: what the verifier actually propagates
        # (its own interception rules would only blow up the unions).
        snapshot = bed.service.verifier._analysis_snapshot(
            bed.service.snapshot()
        )
        work = host_work(bed)

        naive_ms, naive_zones = median_cold_ms(
            lambda: ReferenceReachabilityAnalyzer(
                reference_network_tf(VerificationEngine().compile(snapshot))
            ),
            work,
            repeats,
        )
        indexed_ms, indexed_zones = median_cold_ms(
            lambda: ReachabilityAnalyzer(
                VerificationEngine().compile(snapshot), workers=1
            ),
            work,
            repeats,
        )
        assert indexed_zones == naive_zones, f"{name}: kernels disagree"

        # Parallel fan-out sweeps whole-network queries; time the same
        # per-host workload through the pool-backed inverse query.
        ntf = VerificationEngine().compile(snapshot)
        parallel_ms, parallel_zones = median_cold_ms(
            lambda: ReachabilityAnalyzer(
                VerificationEngine().compile(snapshot), workers=workers
            ),
            work,
            repeats,
        )
        assert parallel_zones == naive_zones

        # Determinism: any worker count returns byte-identical answers.
        probe = work[0][1]
        serial_an = ReachabilityAnalyzer(ntf, workers=1)
        pooled_an = ReachabilityAnalyzer(ntf, workers=workers)
        serial_loops = [
            (l.switch, l.port, l.cycle, l.space.fingerprint())
            for l in serial_an.detect_all_loops(probe)
        ]
        pooled_loops = [
            (l.switch, l.port, l.cycle, l.space.fingerprint())
            for l in pooled_an.detect_all_loops(probe)
        ]
        assert serial_loops == pooled_loops
        target = work[-1][0]
        serial_sources = [
            (ref, hs.fingerprint())
            for ref, hs in serial_an.sources_reaching(*target, probe).items()
        ]
        pooled_sources = [
            (ref, hs.fingerprint())
            for ref, hs in pooled_an.sources_reaching(*target, probe).items()
        ]
        assert serial_sources == pooled_sources

        stats = ntf.kernel_stats()
        counter_lines.append(
            f"{name}: checked={stats.get('rules_checked', 0)} "
            f"skipped={stats.get('rules_skipped', 0)} "
            f"early_exits={stats.get('early_exits', 0)} "
            f"index_hits={stats.get('index_hits', 0)} "
            f"index_misses={stats.get('index_misses', 0)}"
        )
        rows.append(
            (
                name,
                snapshot.rule_count(),
                len(work),
                f"{naive_ms:.1f}",
                f"{indexed_ms:.1f}",
                f"{parallel_ms:.1f}",
                f"{naive_ms / indexed_ms:.2f}x",
                f"{naive_ms / parallel_ms:.2f}x",
                len(naive_zones),
            )
        )
        json_topologies[name] = {
            "rules": snapshot.rule_count(),
            "hosts": len(work),
            "naive_median_ms": round(naive_ms, 3),
            "indexed_median_ms": round(indexed_ms, 3),
            "parallel_median_ms": round(parallel_ms, 3),
            "speedup_indexed": round(naive_ms / indexed_ms, 3),
            "speedup_parallel": round(naive_ms / parallel_ms, 3),
        }
    rep.table(
        [
            "topology",
            "rules",
            "hosts",
            "naive_ms",
            "indexed_ms",
            "parallel_ms",
            "speedup_idx",
            "speedup_par",
            "zones",
        ],
        rows,
    )
    rep.line()
    rep.line(f"workers for the parallel kernel: {workers} (threads)")
    rep.line()
    rep.line("kernel counters (lifetime totals on the indexed NTF):")
    for line in counter_lines:
        rep.line("  " + line)
    rep.line()
    rep.line("protocol: cold-cache — every timed iteration recompiles the")
    rep.line("NTF and rebuilds classifier indexes inside the sweep; medians")
    rep.line("over the iterations.  Answers asserted identical across all")
    rep.line("three kernels, and loop/source sweeps byte-identical for")
    rep.line("workers=1 vs workers=N, before timings are reported.")
    rep.line()
    rep.line("shape check: the indexed kernel clears 3x on every topology;")
    rep.line("the win grows with table size (linear-32 has the largest")
    rep.line("tables).  On a single-core host the thread pool adds a small")
    rep.line("dispatch overhead instead of a win — it exists for multi-core")
    rep.line("hosts and for the determinism guarantee, not for this box.")
    rep.finish()
    rep.save_json(
        {"workers": workers, "topologies": json_topologies}
    )

    # Shape assertion, not a tight bound: medians on a loaded CI box
    # jitter a few percent around the ~3.3x quiet-host figure, so leave
    # headroom — a real regression lands well under 2x.
    for row in rows:
        assert float(row[6][:-1]) >= 2.0, f"{row[0]}: indexed speedup below 2x"

    bed = build_testbed(
        fat_tree_topology(4, clients=["a", "b"]), isolate_clients=True, seed=51
    )
    snapshot = bed.service.verifier._analysis_snapshot(bed.service.snapshot())
    ntf = VerificationEngine().compile(snapshot)
    work = host_work(bed)
    analyzer = ReachabilityAnalyzer(ntf)
    benchmark(lambda: sweep(analyzer, work))


def test_pool_counters(report):
    """FanOutPool bookkeeping: submitted tasks and batch counts."""
    pool = FanOutPool(workers=2, mode="thread")
    results = pool.map(lambda ctx, item: ctx + item, 10, [1, 2, 3])
    assert results == [11, 12, 13]
    stats = pool.stats()
    assert stats["tasks_submitted"] == 3
    assert stats["parallel_batches"] == 1
    serial = FanOutPool(workers=1)
    assert serial.map(lambda ctx, item: item * ctx, 2, [4]) == [8]
    assert serial.stats()["parallel_batches"] == 0
