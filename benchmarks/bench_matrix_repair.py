"""E20 — Incremental atom-matrix repair vs full recompilation.

PR "incremental atom-matrix repair" makes :class:`SnapshotDelta` repair
the existing all-ingress :class:`ReachabilityMatrix` in place: rows
whose traversed-switch set is disjoint from the touched switches are
carried over (renumbered through the cell table when the atom universe
changed), and only rows that actually crossed a touched switch are
re-propagated.  This experiment prices the first verified answer after
a delta — the latency a watch-loop client observes — for a repairing
engine against an identical engine with ``matrix_repair=False`` (the
pre-repair behaviour: every content-hash change rebuilds the matrix
from scratch).

How much a repair saves depends on how many matrix rows *traverse* the
touched switch, so the modes are anchored to the measured dependency
structure instead of a lucky switch choice.  On fat-tree-4 the
deterministic routes concentrate traffic on one aggregation switch per
pod and one core switch: 13 of 20 switches are traversed by every row,
the other 7 (standby aggregation/core) by none.  Delta shapes:

* ``flowmod-1-quiet`` — one FlowMod on a switch no current row
  traverses (a standby-path switch: pre-staged ACLs, backup-route
  provisioning).  Every row is carried over; this is the repair
  sweet spot and the headline number.
* ``flowmod-1-active`` — one FlowMod on a switch every row traverses.
  Every row re-propagates; repair degenerates to roughly a full
  rebuild (the residual win is reused switch pipelines and their warm
  preimage caches).  This is the honest worst case.
* ``flowmod-1-split`` — one FlowMod carrying a previously-unseen match
  constant, so the universe refines and every reused row is renumbered
  through the cell table before any propagation happens.
* ``flowmod-2`` / ``flowmod-4`` — churn spread across 2 / 4 distinct
  switches per snapshot, cycling through the whole switch set.

Rules match an already-registered constant (a client host address) in
every mode except ``flowmod-1-split``, so the universe is unchanged
and repairs are pure row maintenance.

Protocol notes, so the numbers mean what they say:

* Both engines receive every delta and answer every round, so their
  NTF caches are equally warm; the timed difference is matrix
  maintenance only.  The repairing engine is always timed *first*, so
  any one-off interned-space build for a new constant lands on the
  repair side of the ratio (conservative).
* Answers are asserted byte-identical between the two atom engines on
  every round, and against the wildcard backend on each mode's final
  snapshot; the repair engine's fallback counters are asserted clean.
* The correctness of repair itself (byte-identical matrices, oracle
  agreement) is pinned by ``tests/test_matrix_repair.py``; this file
  only prices it.
"""

import statistics
import time

from repro.core.engine import SnapshotDelta, VerificationEngine
from repro.core.snapshot import NetworkSnapshot
from repro.core.verifier import LogicalVerifier
from repro.netlib.addresses import IPv4Address
from repro.dataplane.topologies import fat_tree_topology, waxman_topology
from repro.hsa.transfer import SnapshotRule
from repro.openflow.actions import Drop
from repro.openflow.match import Match
from repro.testbed import build_testbed

CLIENTS = ["a", "b"]
TOPOLOGIES = (
    ("fat-tree-4", lambda: fat_tree_topology(4, clients=CLIENTS)),
    ("waxman-16", lambda: waxman_topology(16, seed=7, clients=CLIENTS)),
)
MODES = (
    # (mode, switches touched per round, new constant?, switch pool)
    ("flowmod-1-quiet", 1, False, "quiet"),
    ("flowmod-1-active", 1, False, "active"),
    ("flowmod-1-split", 1, True, None),
    ("flowmod-2", 2, False, None),
    ("flowmod-4", 4, False, None),
)
ROUNDS = 5
#: per-switch ACL padding, the table sizes production switches carry.
#: Matches draw from a fixed 8-constant pool so the padding registers
#: its atom constants once at the base build and never splits later.
CLUTTER_RULES = 128


def _clutter_rule(i: int) -> SnapshotRule:
    return SnapshotRule(
        table_id=0,
        priority=2,
        match=Match.build(
            in_port=1,
            ip_dst=f"203.0.113.{i % 8}",
            tp_dst=20000 + (i * 3) % 8,
        ),
        actions=(Drop(),),
    )


def _padded_base(bed) -> NetworkSnapshot:
    """The testbed's snapshot with production-like ACL table padding."""
    base = bed.service.snapshot()
    rules = {
        switch: tuple(switch_rules)
        + tuple(_clutter_rule(i) for i in range(CLUTTER_RULES))
        for switch, switch_rules in base.rules.items()
    }
    return NetworkSnapshot(
        version=base.version,
        taken_at=base.taken_at,
        rules=rules,
        meters=base.meters,
        wiring=base.wiring,
        edge_ports=base.edge_ports,
        switch_ports=base.switch_ports,
        locations=base.locations,
        link_capacities=base.link_capacities,
    )


class _DeltaDriver:
    """Synthesises snapshot versions + deltas the way the monitor would:
    per-switch hashes carried forward for unchanged switches."""

    def __init__(
        self,
        base: NetworkSnapshot,
        pinned_ip: IPv4Address,
        switch_pool=None,
    ):
        self.base = base
        self.pinned_ip = pinned_ip  # a registered constant: no split
        self.config = {s: list(rules) for s, rules in base.rules.items()}
        self.switches = sorted(switch_pool or self.config)
        self._hashes: dict = {}
        self._version = base.version
        self._counter = 0
        self.previous = self._snapshot(changed=self.switches)

    def _snapshot(self, changed=()) -> NetworkSnapshot:
        self._version += 1
        for switch in changed:
            self._hashes.pop(switch, None)
        snapshot = NetworkSnapshot(
            version=self._version,
            taken_at=float(self._version),
            rules={s: tuple(rules) for s, rules in self.config.items()},
            meters=self.base.meters,
            wiring=self.base.wiring,
            edge_ports=self.base.edge_ports,
            switch_ports=self.base.switch_ports,
            locations=self.base.locations,
            link_capacities=self.base.link_capacities,
            _switch_hashes=dict(self._hashes),
        )
        for switch in self.config:
            self._hashes[switch] = snapshot.switch_content_hash(switch)
        return snapshot

    def round(self, touched_switches: int, new_constant: bool):
        """Install one FlowMod on each of N switches; return (snapshot,
        delta).  ``new_constant`` rules carry a fresh tp_dst, refining
        the atom universe; otherwise the match reuses a registered host
        address and the universe is unchanged."""
        changed = set()
        for _ in range(touched_switches):
            self._counter += 1
            switch = self.switches[self._counter % len(self.switches)]
            if new_constant:
                match = Match.build(tp_dst=40000 + self._counter)
            else:
                match = Match.build(ip_dst=self.pinned_ip)
            self.config[switch].append(
                SnapshotRule(
                    table_id=0,
                    priority=100 + self._counter,
                    match=match,
                    actions=(Drop(),),
                )
            )
            changed.add(switch)
        snapshot = self._snapshot(changed)
        delta = SnapshotDelta(
            since_version=self.previous.version,
            version=snapshot.version,
            changed_switches=frozenset(changed),
        )
        self.previous = snapshot
        return snapshot, delta


def _pipelines(registrations, warm_snapshot):
    """(repairing, rebuilding) verifier pairs, both warm on the base."""
    repairing = LogicalVerifier(
        registrations, engine=VerificationEngine(backend="atom")
    )
    rebuilding = LogicalVerifier(
        registrations,
        engine=VerificationEngine(backend="atom", matrix_repair=False),
    )
    for verifier in (repairing, rebuilding):
        for name in sorted(registrations):
            verifier.reachable_destinations(
                registrations[name], warm_snapshot
            )
    return repairing, rebuilding


def _dependent_rows(bed, snapshot):
    """switch -> number of matrix rows whose traffic traverses it."""
    registrations = bed.registrations
    probe = LogicalVerifier(
        registrations, engine=VerificationEngine(backend="atom")
    )
    registration = registrations[sorted(registrations)[0]]
    probe.reachable_destinations(registration, snapshot)
    pair = probe.engine.atom_artifacts(probe._analysis_snapshot(snapshot))
    assert pair is not None, "atom universe overflowed on the base snapshot"
    _, matrix = pair
    dependents = {switch: 0 for switch in snapshot.rules}
    for ref in matrix.ingresses():
        row = matrix.row(ref)
        for switch, bits in row.traversed.items():
            if bits:
                dependents[switch] += 1
    return dependents


def _measure_mode(bed, base, dependents, mode, touched, new_constant, pool_kind):
    registrations = bed.registrations
    registration = registrations[sorted(registrations)[0]]
    pinned_ip = IPv4Address(registration.hosts[0].ip)
    pool = None
    if pool_kind == "quiet":
        floor = min(dependents.values())
        pool = [s for s, n in dependents.items() if n == floor]
    elif pool_kind == "active":
        ceiling = max(dependents.values())
        pool = [s for s, n in dependents.items() if n == ceiling]
    driver = _DeltaDriver(base, pinned_ip, pool)
    repairing, rebuilding = _pipelines(registrations, driver.previous)
    before = repairing.engine.metrics.snapshot_counters()
    repair_ms, full_ms = [], []
    snapshot = driver.previous
    for _ in range(ROUNDS):
        snapshot, delta = driver.round(touched, new_constant)
        repairing.engine.apply_delta(delta)
        rebuilding.engine.apply_delta(delta)
        start = time.perf_counter()
        repaired = repairing.reachable_destinations(registration, snapshot)
        repair_ms.append((time.perf_counter() - start) * 1000)
        start = time.perf_counter()
        rebuilt = rebuilding.reachable_destinations(registration, snapshot)
        full_ms.append((time.perf_counter() - start) * 1000)
        assert repaired == rebuilt  # speedup never buys a different answer
    # Byte-identical against the wildcard backend on the final snapshot.
    wildcard = LogicalVerifier(
        registrations, engine=VerificationEngine(backend="wildcard")
    )
    assert (
        wildcard.reachable_destinations(registration, snapshot) == repaired
    )
    metrics = repairing.engine.metrics
    counters = metrics.snapshot_counters()
    assert metrics.matrix_repairs - before["matrix_repairs"] == ROUNDS
    assert metrics.atom_matrix_builds == before["atom_matrix_builds"]
    assert metrics.atom_fallbacks == before["atom_fallbacks"]
    assert rebuilding.engine.metrics.matrix_repairs == 0
    repair_median = statistics.median(repair_ms)
    full_median = statistics.median(full_ms)
    return {
        "mode": mode,
        "flowmods_per_snapshot": touched,
        "repair_median_ms": round(repair_median, 3),
        "full_median_ms": round(full_median, 3),
        "speedup": round(full_median / repair_median, 3),
        "rows_reused": counters["rows_reused"] - before["rows_reused"],
        "rows_repaired": counters["rows_repaired"] - before["rows_repaired"],
        "atoms_split": counters["atoms_split"] - before["atoms_split"],
    }


def test_matrix_repair_speedup(benchmark, report):
    rep = report("E20", "Atom-matrix repair vs full recompilation")
    json_topologies = {}
    single_speedups = {}
    for name, make_topo in TOPOLOGIES:
        bed = build_testbed(make_topo(), isolate_clients=True, seed=51)
        rows = []
        mode_payloads = []
        base = _padded_base(bed)
        dependents = _dependent_rows(bed, base)
        for mode, touched, new_constant, pool_kind in MODES:
            payload = _measure_mode(
                bed, base, dependents, mode, touched, new_constant, pool_kind
            )
            mode_payloads.append(payload)
            if mode == "flowmod-1-quiet":
                single_speedups[name] = payload["speedup"]
            rows.append(
                (
                    mode,
                    f"{payload['repair_median_ms']:.2f}",
                    f"{payload['full_median_ms']:.2f}",
                    f"{payload['speedup']:.1f}x",
                    payload["rows_reused"],
                    payload["rows_repaired"],
                    payload["atoms_split"],
                )
            )
        quiet = sum(
            1 for n in dependents.values() if n == min(dependents.values())
        )
        json_topologies[name] = {
            "switches": len(bed.topology.switches),
            "rounds_per_mode": ROUNDS,
            "quiet_pool_dependent_rows": min(dependents.values()),
            "active_pool_dependent_rows": max(dependents.values()),
            "modes": mode_payloads,
        }
        rep.line(
            f"{name}: {len(bed.topology.switches)} switches, "
            f"{quiet} with {min(dependents.values())} dependent rows "
            f"(quiet pool), busiest has {max(dependents.values())}"
        )
        rep.table(
            [
                "mode",
                "repair_ms",
                "full_ms",
                "speedup",
                "rows_reused",
                "rows_repaired",
                "atoms_split",
            ],
            rows,
        )
        rep.line()
    rep.line("protocol: both engines receive every delta and answer every")
    rep.line("round (equally warm NTF caches), so the timed difference is")
    rep.line("matrix maintenance only; the repairing engine is timed first,")
    rep.line("so interned-space builds for new constants land on the repair")
    rep.line("side.  Answers asserted byte-identical between atom engines")
    rep.line("every round and against the wildcard backend per mode; repair")
    rep.line("fallbacks asserted zero.  Matrix byte-equality is pinned by")
    rep.line("tests/test_matrix_repair.py.")
    rep.finish()
    rep.save_json({"topologies": json_topologies})

    assert single_speedups["fat-tree-4"] >= 10.0, (
        f"fat-tree-4: single-FlowMod (quiet switch) repair speedup "
        f"{single_speedups['fat-tree-4']}x below the 10x target"
    )

    bed = build_testbed(
        fat_tree_topology(4, clients=CLIENTS), isolate_clients=True, seed=51
    )
    registrations = bed.registrations
    registration = registrations[sorted(registrations)[0]]
    base = _padded_base(bed)
    dependents = _dependent_rows(bed, base)
    floor = min(dependents.values())
    driver = _DeltaDriver(
        base,
        IPv4Address(registration.hosts[0].ip),
        [s for s, n in dependents.items() if n == floor],
    )
    repairing, _ = _pipelines(registrations, driver.previous)

    def one_repair_round():
        snapshot, delta = driver.round(1, False)
        repairing.engine.apply_delta(delta)
        return repairing.reachable_destinations(registration, snapshot)

    benchmark.pedantic(one_repair_round, rounds=5, iterations=1)
