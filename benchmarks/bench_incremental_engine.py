"""E16 — Incremental verification: delta-driven vs full recompilation.

The tentpole claim of the engine refactor: when a snapshot differs from
its predecessor by a handful of FlowMods, re-verification should pay for
the *changed* switches only.  This benchmark drives churn rounds of
1..50 FlowMods per snapshot across a fat-tree and an ISP-like (Waxman)
topology, padded with per-port ACL clutter to production-like table
sizes, and compares two pipelines answering the same query:

* **warm** — the service's shared :class:`VerificationEngine`, fed
  :class:`SnapshotDelta` objects between rounds (delta-driven
  invalidation, per-switch compiled-artifact reuse);
* **full** — a fresh :class:`LogicalVerifier` with a cold engine per
  round, i.e. the pre-refactor behaviour of recompiling every switch
  transfer function for every snapshot version.

Every round also asserts the two pipelines return identical answers, so
the speedup is never bought with staleness.
"""

import statistics
import time

import pytest

from repro.core.engine import SnapshotDelta
from repro.core.snapshot import NetworkSnapshot
from repro.core.verifier import LogicalVerifier
from repro.dataplane.topologies import fat_tree_topology, waxman_topology
from repro.hsa.transfer import SnapshotRule
from repro.openflow.actions import Drop
from repro.openflow.match import Match
from repro.testbed import build_testbed

#: per-port ACL clutter entries per switch — production-like table sizes
CLUTTER_RULES = 512
CHURN_RATES = (1, 5, 20, 50)
ROUNDS_PER_RATE = 5


def _clutter_rule(i: int, salt: int = 0) -> SnapshotRule:
    """An in_port-scoped ACL drop, the shape real tables are padded with."""
    return SnapshotRule(
        table_id=0,
        priority=2,
        match=Match.build(
            in_port=1,
            ip_src=f"172.{salt % 16}.{i % 256}.{(i * 7) % 256}",
            ip_dst=f"192.168.{i % 256}.1",
            tp_src=10000 + i % 5000,
            tp_dst=20000 + i % 5000,
        ),
        actions=(Drop(),),
    )


class _ChurnDriver:
    """Synthesises padded snapshot versions the way the monitor would:
    per-switch hashes carried forward for unchanged switches, a
    :class:`SnapshotDelta` describing each version transition."""

    def __init__(self, bed):
        self.bed = bed
        base = bed.service.snapshot()
        self.base = base
        self.config = {
            switch: list(rules) + [_clutter_rule(i) for i in range(CLUTTER_RULES)]
            for switch, rules in base.rules.items()
        }
        self.switches = sorted(self.config)
        self._hashes: dict = {}
        self._version = base.version
        self._counter = 0
        self.previous = self.make_snapshot(changed=self.switches)

    def make_snapshot(self, changed=()) -> NetworkSnapshot:
        self._version += 1
        for switch in changed:
            self._hashes.pop(switch, None)
        snapshot = NetworkSnapshot(
            version=self._version,
            taken_at=float(self._version),
            rules={s: tuple(rules) for s, rules in self.config.items()},
            meters=self.base.meters,
            wiring=self.base.wiring,
            edge_ports=self.base.edge_ports,
            switch_ports=self.base.switch_ports,
            locations=self.base.locations,
            link_capacities=self.base.link_capacities,
            _switch_hashes=dict(self._hashes),
        )
        for switch in self.config:
            self._hashes[switch] = snapshot.switch_content_hash(switch)
        return snapshot

    def churn_round(self, flowmods: int):
        """Apply ``flowmods`` rule installs; return (snapshot, delta)."""
        changed = set()
        for _ in range(flowmods):
            self._counter += 1
            switch = self.switches[self._counter % len(self.switches)]
            self.config[switch].append(_clutter_rule(self._counter, salt=9))
            changed.add(switch)
        snapshot = self.make_snapshot(changed)
        added, removed = snapshot.diff(self.previous)
        delta = SnapshotDelta(
            since_version=self.previous.version,
            version=snapshot.version,
            added_rules=added,
            removed_rules=removed,
            changed_switches=frozenset(s for s, _ in added | removed),
        )
        self.previous = snapshot
        return snapshot, delta


def _measure(topology):
    bed = build_testbed(topology, isolate_clients=True, seed=71)
    driver = _ChurnDriver(bed)
    registration = bed.registrations["a"]
    warm = bed.service.verifier
    engine = bed.service.engine
    warm.reachable_destinations(registration, driver.previous)
    rows = []
    json_rows = []
    low_churn_speedup = None
    for churn in CHURN_RATES:
        warm_ms, full_ms = [], []
        for _ in range(ROUNDS_PER_RATE):
            snapshot, delta = driver.churn_round(churn)
            engine.apply_delta(delta)
            start = time.perf_counter()
            warm_answer = warm.reachable_destinations(registration, snapshot)
            warm_ms.append((time.perf_counter() - start) * 1000)
            cold = LogicalVerifier(bed.registrations)
            start = time.perf_counter()
            cold_answer = cold.reachable_destinations(registration, snapshot)
            full_ms.append((time.perf_counter() - start) * 1000)
            assert warm_answer == cold_answer  # speedup never buys staleness
        warm_median = statistics.median(warm_ms)
        full_median = statistics.median(full_ms)
        speedup = full_median / warm_median
        if churn == min(CHURN_RATES):
            low_churn_speedup = speedup
        rows.append(
            (
                churn,
                f"{warm_median:.1f}",
                f"{full_median:.1f}",
                f"{speedup:.1f}x",
            )
        )
        json_rows.append(
            {
                "flowmods_per_snapshot": churn,
                "delta_median_ms": round(warm_median, 3),
                "full_median_ms": round(full_median, 3),
                "speedup": round(speedup, 3),
            }
        )
    counters = engine.metrics.snapshot_counters()
    return bed, rows, json_rows, low_churn_speedup, counters


def test_incremental_vs_full_recompilation(benchmark, report):
    rep = report("E16", "Delta-driven re-verification vs full recompilation")
    low_churn = {}
    all_counters = {}
    json_topologies = {}
    for name, topology in (
        ("fat-tree-4", fat_tree_topology(4, clients=["a", "b", "c", "d"])),
        ("waxman-24", waxman_topology(24, seed=5, clients=["a", "b", "c", "d"])),
    ):
        bed, rows, json_rows, speedup, counters = _measure(topology)
        low_churn[name] = speedup
        all_counters[name] = counters
        json_topologies[name] = {
            "switches": len(bed.topology.switches),
            "clutter_rules_per_switch": CLUTTER_RULES,
            "churn_rounds": json_rows,
            "low_churn_speedup": round(speedup, 3),
        }
        rep.line(
            f"{name}: {len(bed.topology.switches)} switches, "
            f"{len(bed.registrations['a'].hosts)} hosts/client, "
            f"{CLUTTER_RULES} ACL clutter rules per switch"
        )
        rep.table(
            ["flowmods_per_snapshot", "delta_ms", "full_ms", "speedup"], rows
        )
        rep.line(
            "engine counters: "
            f"tf hits={counters['switch_tf_hits']} "
            f"misses={counters['switch_tf_misses']} "
            f"incremental builds={counters['incremental_builds']} "
            f"deltas={counters['deltas_applied']}"
        )
        rep.line()
    rep.line("shape check: at 1 FlowMod/snapshot the engine recompiles one")
    rep.line("switch and pays only propagation; the advantage erodes as")
    rep.line("churn approaches the switch count, where delta-driven and")
    rep.line("full recompilation converge to the same work.")
    rep.finish()
    rep.save_json({"topologies": json_topologies})

    for name, speedup in low_churn.items():
        assert speedup >= 5.0, (
            f"{name}: low-churn speedup {speedup:.1f}x below the 5x target"
        )

    bed = build_testbed(
        fat_tree_topology(4, clients=["a", "b"]), isolate_clients=True, seed=71
    )
    driver = _ChurnDriver(bed)
    registration = bed.registrations["a"]
    bed.service.verifier.reachable_destinations(registration, driver.previous)

    def one_low_churn_round():
        snapshot, delta = driver.churn_round(1)
        bed.service.engine.apply_delta(delta)
        return bed.service.verifier.reachable_destinations(registration, snapshot)

    benchmark.pedantic(one_low_churn_round, rounds=5, iterations=1)
