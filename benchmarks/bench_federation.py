"""E22 — AS-scale federation: matrix-composed queries and herd immunity.

A 120-domain synthetic internetwork (power-law customer cones,
valley-free routing) partitioned into one provider domain per AS.  The
experiment compares three executions of the same federated reachability
query:

* **recompile** — the pre-fix hot path: every cross-domain work item
  restricts the global snapshot and rebuilds the domain's network
  transfer function from scratch;
* **serial** — per-domain compiles routed through each domain's
  ``VerificationEngine`` (content-hash cached), wildcard header spaces
  handed across boundaries;
* **matrix** — each domain compiles once into an atom universe plus
  reachability-matrix rows; a cross-domain hop is a bitset intersection
  at the boundary port and one decode/encode at the trust boundary.

Acceptance: matrix-composed is >= 5x faster than the recompile path at
>= 100 domains with byte-identical endpoint sets, and the herd-immunity
audit produces all four verdict classes with a protected fraction that
matches the brute-force oracle on small instances.
"""

import time
from itertools import combinations

from repro.core.herd import (
    SECURE_INHERITED,
    SECURE_LOCAL,
    VERDICTS,
    brute_force_verdict,
    herd_immunity_report,
)
from repro.core.protocol import ClientRegistration
from repro.dataplane.asgraph import (
    as_graph_topology,
    build_snapshot,
    client_registration,
    federation_from_asgraph,
)

SEED = 11
N_LARGE = 120
N_SMALL = 40
CONE_THRESHOLD = 20  # ASes this size run RVaaS in the herd scenario


def _build(n_domains, backend):
    asg = as_graph_topology(n_domains, seed=SEED, client_sites=3)
    snapshot = build_snapshot(asg)
    federation = federation_from_asgraph(
        asg, snapshot=snapshot, backend=backend
    )
    reg = client_registration(asg)
    single = ClientRegistration(
        name=reg.name, public_key=reg.public_key, hosts=(reg.hosts[0],)
    )
    return asg, federation, reg, single


def _timed(federation, registration, mode):
    start = time.perf_counter()
    answer = federation.federated_query(registration, mode=mode)
    return answer, (time.perf_counter() - start) * 1000


def test_federation_at_scale(benchmark, report):
    rep = report("E22", "AS-scale federation: matrix composition + herd audit")

    # ------------------------------------------------------------------
    # Mode comparison at 40 domains (serial is tractable here)
    # ------------------------------------------------------------------
    asg_s, fed_atom_s, reg_s, single_s = _build(N_SMALL, "atom")
    _, fed_wild_s, _, _ = _build(N_SMALL, "wildcard")
    recompile_s, t_recompile_s = _timed(fed_wild_s, single_s, "recompile")
    fed_wild_s.federated_query(single_s, mode="serial")  # warm engine caches
    serial_s, t_serial_s = _timed(fed_wild_s, single_s, "serial")
    _, t_matrix_cold_s = _timed(fed_atom_s, single_s, "matrix")
    matrix_s, t_matrix_s = _timed(fed_atom_s, single_s, "matrix")
    assert set(matrix_s.endpoints) == set(serial_s.endpoints)
    assert set(matrix_s.endpoints) == set(recompile_s.endpoints)
    assert matrix_s.regions == serial_s.regions == recompile_s.regions

    # ------------------------------------------------------------------
    # Headline at 120 domains: recompile baseline vs matrix composition
    # ------------------------------------------------------------------
    asg, fed_atom, reg, single = _build(N_LARGE, "atom")
    _, fed_wild, _, _ = _build(N_LARGE, "wildcard")
    recompile_l, t_recompile_l = _timed(fed_wild, single, "recompile")
    _, t_matrix_cold_l = _timed(fed_atom, single, "matrix")
    matrix_l, t_matrix_l = _timed(fed_atom, single, "matrix")
    assert set(matrix_l.endpoints) == set(recompile_l.endpoints)
    assert matrix_l.regions == recompile_l.regions
    assert len(matrix_l.endpoints) >= N_LARGE  # every AS's anchor host
    assert not matrix_l.truncated
    speedup = t_recompile_l / max(t_matrix_l, 1e-6)
    assert speedup >= 5.0, f"matrix only {speedup:.1f}x vs recompile"

    # All client sites at once: new ip_src atoms force a re-seed, so
    # this is a cold query for the full registration.
    full_l, t_full_l = _timed(fed_atom, reg, "matrix")
    assert set(matrix_l.endpoints) <= set(full_l.endpoints)

    rep.table(
        ["domains", "mode", "wall_ms", "federated_msgs", "endpoints"],
        [
            (N_SMALL, "recompile", f"{t_recompile_s:.0f}", recompile_s.federated_messages, len(recompile_s.endpoints)),
            (N_SMALL, "serial (warm)", f"{t_serial_s:.0f}", serial_s.federated_messages, len(serial_s.endpoints)),
            (N_SMALL, "matrix (cold)", f"{t_matrix_cold_s:.0f}", matrix_s.federated_messages, len(matrix_s.endpoints)),
            (N_SMALL, "matrix (warm)", f"{t_matrix_s:.1f}", matrix_s.federated_messages, len(matrix_s.endpoints)),
            (N_LARGE, "recompile", f"{t_recompile_l:.0f}", recompile_l.federated_messages, len(recompile_l.endpoints)),
            (N_LARGE, "matrix (cold)", f"{t_matrix_cold_l:.0f}", matrix_l.federated_messages, len(matrix_l.endpoints)),
            (N_LARGE, "matrix (warm)", f"{t_matrix_l:.1f}", matrix_l.federated_messages, len(matrix_l.endpoints)),
            (N_LARGE, "matrix (3 sites, cold)", f"{t_full_l:.0f}", full_l.federated_messages, len(full_l.endpoints)),
        ],
    )
    rep.line()
    rep.line(
        f"matrix-composed warm query: {speedup:.0f}x faster than the"
    )
    rep.line(
        "per-hop-recompile baseline at 120 domains, byte-identical"
    )
    rep.line(
        f"endpoints; boundary handoffs aggregate into "
        f"{matrix_l.federated_messages} messages vs "
        f"{recompile_l.federated_messages} wildcard-currency ones."
    )

    # ------------------------------------------------------------------
    # Herd-immunity audit over the 120-AS graph
    # ------------------------------------------------------------------
    rel = asg.relationships()
    cones = rel.cone_sizes()
    verified = {n for n, c in cones.items() if c >= CONE_THRESHOLD}
    herd_start = time.perf_counter()
    herd = herd_immunity_report(rel, verified)
    t_herd = (time.perf_counter() - herd_start) * 1000
    assert all(herd.counts[v] >= 1 for v in VERDICTS), herd.counts
    rep.line()
    rep.line(
        f"herd immunity with {len(verified)} verified transit ASes"
        f" (cone >= {CONE_THRESHOLD}), {len(herd.verdicts)} pairs,"
        f" {t_herd:.0f} ms:"
    )
    for verdict, count in herd.summary_rows():
        rep.line(f"  {verdict:<17} {count:>6}")
    rep.line(
        f"protected fraction {herd.protected_fraction:.3f}, verified-cone"
        f" coverage {herd.verified_cone_coverage:.2f}"
    )

    # Oracle: sweeps == brute-force walk enumeration on a small graph.
    small = as_graph_topology(10, seed=SEED)
    srel = small.relationships()
    scones = srel.cone_sizes()
    sverified = {n for n, c in scones.items() if c >= 3}
    sreport = herd_immunity_report(srel, sverified)
    oracle_counts = {v: 0 for v in VERDICTS}
    for s, d in combinations(small.order, 2):
        verdict = brute_force_verdict(srel, sverified, s, d)
        oracle_counts[verdict] += 1
        assert sreport.verdicts[(s, d)] == verdict, (s, d)
    oracle_secure = (
        oracle_counts[SECURE_LOCAL] + oracle_counts[SECURE_INHERITED]
    )
    assert sreport.protected_fraction == oracle_secure / len(sreport.verdicts)
    rep.line()
    rep.line(
        "protected fraction matches the brute-force oracle on the"
        " 10-AS instance, verdict for verdict."
    )

    rep.save_json(
        {
            "workload": {
                "seed": SEED,
                "domains": N_LARGE,
                "switches": 2 * N_LARGE,
                "client_sites": 3,
                "cone_threshold": CONE_THRESHOLD,
            },
            "query_ms": {
                "recompile_120": round(t_recompile_l, 1),
                "matrix_cold_120": round(t_matrix_cold_l, 1),
                "matrix_warm_120": round(t_matrix_l, 2),
                "serial_warm_40": round(t_serial_s, 1),
                "recompile_40": round(t_recompile_s, 1),
                "matrix_warm_40": round(t_matrix_s, 2),
            },
            "speedup_matrix_vs_recompile": round(speedup, 1),
            "federated_messages": {
                "matrix_120": matrix_l.federated_messages,
                "recompile_120": recompile_l.federated_messages,
            },
            "herd": {
                "verified": len(verified),
                "pairs": len(herd.verdicts),
                "counts": herd.counts,
                "protected_fraction": round(herd.protected_fraction, 4),
                "verified_cone_coverage": round(
                    herd.verified_cone_coverage, 4
                ),
            },
        }
    )
    rep.finish()

    benchmark(lambda: fed_atom_s.federated_query(single_s, mode="matrix"))
