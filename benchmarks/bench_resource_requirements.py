"""E5 — The "low resource requirements" claim (§I-A, §IV).

Measures, per query class, the CPU cost of the logical analysis, and the
size of the state RVaaS must hold (configuration snapshot) as the
network grows.  Expected shape: per-query cost in the low milliseconds
at laptop scale; snapshot size linear in total rules.
"""

import time

import pytest

from repro.core.queries import (
    FairnessQuery,
    GeoLocationQuery,
    IsolationQuery,
    PathLengthQuery,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    TransferFunctionQuery,
    WaypointAvoidanceQuery,
)
from repro.dataplane.topologies import fat_tree_topology, isp_topology, linear_topology
from repro.testbed import build_testbed

QUERIES = [
    ("ReachableDestinations", ReachableDestinationsQuery(authenticate=False)),
    ("ReachingSources", ReachingSourcesQuery()),
    ("Isolation", IsolationQuery()),
    ("GeoLocation", GeoLocationQuery()),
    ("WaypointAvoidance", WaypointAvoidanceQuery(forbidden_regions=("offshore",))),
    ("PathLength", PathLengthQuery()),
    ("Fairness", FairnessQuery()),
    ("TransferFunction", TransferFunctionQuery()),
]


def test_per_query_cpu_cost(benchmark, report):
    rep = report("E5", "Per-query CPU cost (ISP topology, isolated policy)")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=21
    )
    rows = []
    for name, query in QUERIES:
        start = time.perf_counter()
        repeats = 5
        for _ in range(repeats):
            bed.service.answer_locally("alice", query)
        elapsed_ms = (time.perf_counter() - start) * 1000 / repeats
        rows.append((name, f"{elapsed_ms:.2f}"))
    rep.table(["query class", "cpu_ms_per_query"], rows)
    rep.line()
    counters = bed.service.engine.metrics.snapshot_counters()
    rep.line(
        "engine counters: "
        f"switch tf hits={counters['switch_tf_hits']} "
        f"misses={counters['switch_tf_misses']} "
        f"reach hits={counters['reach_hits']} "
        f"misses={counters['reach_misses']}"
    )
    rep.line("the whole battery compiles each switch once; repeat queries on")
    rep.line("the unchanged snapshot are served from the memoized propagations.")
    rep.line()
    rep.line("shape check: every query class answers in milliseconds on a")
    rep.line("laptop — consistent with 'low resource requirements' and 'no")
    rep.line("strict latency requirements' for the verification server.")
    rep.finish()
    assert all(float(row[1]) < 1000 for row in rows)

    benchmark(
        lambda: bed.service.answer_locally("alice", IsolationQuery())
    )


def test_snapshot_footprint_scaling(benchmark, report):
    rep = report("E5b", "Snapshot footprint vs network size")
    topologies = [
        ("linear-4", linear_topology(4, clients=["a", "b"])),
        ("linear-8", linear_topology(8, clients=["a", "b"])),
        ("linear-16", linear_topology(16, clients=["a", "b"])),
        ("fat-tree-4", fat_tree_topology(4, clients=["a", "b", "c", "d"])),
    ]
    rows = []
    last_bed = None
    for name, topo in topologies:
        bed = build_testbed(topo, isolate_clients=True, seed=22)
        snapshot = bed.service.snapshot()
        rows.append(
            (
                name,
                len(topo.switches),
                snapshot.rule_count(),
                f"{snapshot.approximate_size_bytes() / 1024:.1f}",
            )
        )
        last_bed = bed
    rep.table(["topology", "switches", "rules", "snapshot_kib"], rows)
    rep.line()
    rep.line("shape check: snapshot memory tracks the rule count (linear),")
    rep.line("tens of KiB at these scales — a single modest server suffices.")
    rep.finish()

    # Footprint grows monotonically with rules.
    rule_counts = [row[2] for row in rows[:3]]
    assert rule_counts == sorted(rule_counts)

    benchmark(lambda: last_bed.service.snapshot().content_hash())
