"""E12 — Fairness / network-neutrality queries over meter tables (§IV-C b).

"RVaaS could be used to check whether allocated routes and meter tables
meet network neutrality requirements."  The experiment installs a
discriminatory rate limit on one client, shows the real data-plane
throttling (token-bucket drops), and verifies the fairness query flags
exactly the discriminated client.
"""

import pytest

from repro.core.queries import FairnessQuery
from repro.dataplane.topologies import isp_topology
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import Meter, Output
from repro.openflow.match import Match
from repro.openflow.meters import MeterBand
from repro.testbed import build_testbed


def throttle_client(bed, client: str, rate_kbps: int, switch: str = "ber"):
    """Install a meter limiting ``client``'s traffic entering ``switch``."""
    host = next(
        h for h in bed.registrations[client].hosts if h.switch == switch
    )
    bed.provider.install_meter(switch, 42, MeterBand(rate_kbps=rate_kbps, burst_kb=2))
    # Throttled copy of the ingress guard: meter then continue routing.
    from repro.openflow.actions import GotoTable

    bed.provider.install_flow(
        switch,
        Match(in_port=host.port, ip_src=IPv4Address(host.ip)),
        (Meter(42), GotoTable(1)),
        priority=25,
    )
    bed.run(0.5)
    bed.service.monitor.poll_all()
    bed.run(0.5)
    return host


def measure_goodput(bed, src_host: str, dst_host: str, packets=60, payload=1400):
    src = bed.network.host(src_host)
    dst = bed.network.host(dst_host)
    before = len(dst.received)
    for i in range(packets):
        src.send_udp(dst.ip, 5000, b"x" * payload)
        bed.run(0.005)
    bed.run(0.5)
    return len(dst.received) - before


def test_fairness_detection_and_real_throttling(benchmark, report):
    rep = report("E12", "Neutrality: meter detection and real throttling")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=71
    )
    clean = bed.service.answer_locally("alice", FairnessQuery())

    throttle_client(bed, "alice", rate_kbps=500)
    throttled = bed.service.answer_locally("alice", FairnessQuery())
    bob_view = bed.service.answer_locally("bob", FairnessQuery())

    # Real data-plane effect: alice's goodput drops, bob's does not.
    alice_goodput = measure_goodput(bed, "h_ber1", "h_fra1")
    bob_goodput = measure_goodput(bed, "h_ber2", "h_ams1")

    rows = [
        ("alice, before meter", clean.neutral, "-", "-"),
        (
            "alice, after 500 kbps meter",
            throttled.neutral,
            len(throttled.meters_on_my_traffic),
            f"{alice_goodput}/60 pkts",
        ),
        ("bob, after alice's meter", bob_view.neutral, 0, f"{bob_goodput}/60 pkts"),
    ]
    rep.table(["view", "neutral", "meters_on_traffic", "goodput"], rows)
    rep.line()
    rep.line("shape check: the fairness query flags exactly the throttled")
    rep.line("client; the token bucket really drops the excess (60 x 1.4 kB")
    rep.line("in 0.3 s ≈ 2.2 Mbps offered vs 500 kbps allowed).")
    rep.finish()

    assert clean.neutral
    assert not throttled.neutral
    assert bob_view.neutral
    assert alice_goodput < 60
    assert bob_goodput == 60

    benchmark(lambda: bed.service.answer_locally("alice", FairnessQuery()))


def test_detection_across_rates(benchmark, report):
    rep = report("E12b", "Detection across meter rates")
    rows = []
    for rate in (100, 1000, 10000):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=72
        )
        throttle_client(bed, "alice", rate_kbps=rate)
        answer = bed.service.answer_locally("alice", FairnessQuery())
        rows.append(
            (
                rate,
                answer.neutral,
                answer.meters_on_my_traffic[0].rate_kbps
                if answer.meters_on_my_traffic
                else "-",
            )
        )
    rep.table(["meter_rate_kbps", "reported_neutral", "reported_rate"], rows)
    rep.line()
    rep.line("any rate limit applying only to one client's traffic violates")
    rep.line("neutrality, regardless of how generous it is.")
    rep.finish()
    assert all(row[1] is False for row in rows)

    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=72
    )
    benchmark(lambda: bed.service.answer_locally("alice", FairnessQuery()))
