"""E18 — Fault resilience: lossy control channels vs verdict integrity.

The paper assumes reliable OpenFlow sessions; this experiment drops that
assumption.  On a fat-tree-4 with an armed diversion attack, a seeded
fault plan impairs every control channel (record drop probability swept
0 -> 0.2, plus probabilistic extra delay up to 50 ms) for a fixed chaos
window.  Measured per drop rate:

* whether RVaaS's verdict ever *disagrees with ground truth* once its
  mirror has reconverged (the never-lie bar — answers may be stale or
  flagged degraded, never wrong),
* how long after the faults stop the mirror takes to become
  byte-identical to the live switch tables,
* the retry/timeout/resync work the resilience layer performed.

Expected shape: at drop=0 the run is fault-free (zero timeouts, instant
convergence); rising drop rates cost retries and resyncs but never a
wrong verdict, and reconvergence stays bounded by a few poll intervals.
"""

from repro.attacks import DiversionAttack
from repro.core.queries import PathLengthQuery
from repro.dataplane.topologies import fat_tree_topology, linear_topology
from repro.faults import (
    FaultPlan,
    ground_truth_snapshot,
    mirror_divergence,
    mirror_synced,
)
from repro.testbed import build_testbed

#: Chaos window (virtual seconds): faults are active in [ACTIVE_FROM,
#: ACTIVE_UNTIL); the attack is armed inside the window so its FlowMods
#: and their passive monitor updates are themselves at risk.
ACTIVE_FROM = 2.0
ACTIVE_UNTIL = 14.0
CONVERGENCE_LIMIT = 30.0


def run_chaos(drop, seed=18):
    plan = FaultPlan.uniform(
        drop=drop,
        delay=0.3,
        max_extra_delay=0.05,
        seed=seed,
        active_from=ACTIVE_FROM,
        active_until=ACTIVE_UNTIL,
    )
    bed = build_testbed(
        fat_tree_topology(4, clients=["a", "b"]),
        isolate_clients=True,
        seed=seed,
        fault_plan=plan,
        mean_poll_interval=2.0,
        auth_retries=2,
    )
    # Arm the diversion mid-chaos: its FlowMods cross impaired provider
    # channels and its monitor updates cross impaired RVaaS channels.
    # The attacker retransmits (OpenFlow rides TCP), so the attack is
    # re-asserted every second — lossy channels delay it but don't
    # accidentally defang it.
    bed.run(3.0)  # now at t=4.0 (build settles to t=1.0)
    attack = DiversionAttack("h1", "h3", "c3")
    bed.provider.compromise(attack)

    # Sample the degradation as the chaos unfolds: how far does the
    # mirror drift, and does the health tracker flag it?
    monitor = bed.service.monitor
    max_divergent_switches = 0
    degraded_instants = 0
    samples = 0
    while bed.network.sim.now < ACTIVE_UNTIL:
        bed.run(1.0)
        attack.arm(bed.provider, bed.provider.topology)
        samples += 1
        max_divergent_switches = max(
            max_divergent_switches,
            len(mirror_divergence(monitor, bed.network)),
        )
        if monitor.health.degraded() or monitor.health.lost():
            degraded_instants += 1

    # Time until the mirror is byte-identical to the live tables again.
    reconverged_after = None
    waited = 0.0
    while waited <= CONVERGENCE_LIMIT:
        if mirror_synced(monitor, bed.network):
            reconverged_after = waited
            break
        bed.run(0.25)
        waited += 0.25

    # Verdict integrity: the answer from the (reconverged) mirror must
    # agree with the answer computed from the actual switch tables.
    registration = bed.registrations["a"]
    query = PathLengthQuery()
    mirror_answer = bed.service.verifier.answer(
        query, registration, bed.service.snapshot()
    )
    truth_answer = bed.service.verifier.answer(
        query, registration, ground_truth_snapshot(monitor, bed.network)
    )
    return {
        "drop": drop,
        "records_dropped": bed.fault_injector.metrics.records_dropped,
        "poll_timeouts": monitor.metrics.poll_timeouts,
        "poll_retries": monitor.metrics.poll_retries,
        "resyncs": monitor.metrics.resyncs,
        "bursts_abandoned": monitor.metrics.poll_bursts_abandoned,
        "max_divergent_switches": max_divergent_switches,
        "degraded_instants": f"{degraded_instants}/{samples}",
        "reconverged_after": reconverged_after,
        "mirror_optimal": mirror_answer.optimal,
        "truth_optimal": truth_answer.optimal,
        "verdict_correct": mirror_answer.optimal == truth_answer.optimal,
        "stretch": mirror_answer.max_stretch,
    }


def smoke_chaos(seed=19):
    """The timed body: a small lossy run that must reconverge."""
    plan = FaultPlan.uniform(drop=0.2, delay=0.3, seed=seed, active_until=4.0)
    bed = build_testbed(
        linear_topology(3, clients=["c"]),
        seed=seed,
        fault_plan=plan,
        mean_poll_interval=0.5,
    )
    bed.run(10.0)
    assert mirror_synced(bed.service.monitor, bed.network)
    return bed.service.monitor.metrics.poll_timeouts


def test_fault_resilience_sweep(benchmark, report):
    rep = report("E18", "Verdict integrity under lossy control channels")
    rows = []
    results = []
    for drop in (0.0, 0.05, 0.1, 0.2):
        outcome = run_chaos(drop)
        results.append(outcome)
        rows.append(
            (
                f"{drop:.2f}",
                outcome["records_dropped"],
                outcome["poll_timeouts"],
                outcome["poll_retries"],
                outcome["resyncs"],
                outcome["max_divergent_switches"],
                outcome["degraded_instants"],
                (
                    f"{outcome['reconverged_after']:.2f}"
                    if outcome["reconverged_after"] is not None
                    else f">{CONVERGENCE_LIMIT:.0f}"
                ),
                "yes" if outcome["verdict_correct"] else "NO",
                f"{outcome['stretch']:.2f}",
            )
        )
    rep.table(
        [
            "drop",
            "rec_dropped",
            "timeouts",
            "retries",
            "resyncs",
            "max_diverged",
            "degraded",
            "reconverge_s",
            "verdict_ok",
            "stretch",
        ],
        rows,
    )
    rep.line()
    rep.line("fat-tree-4, diversion h1->h3 via c3 armed mid-chaos; faults")
    rep.line(f"active t=[{ACTIVE_FROM:.0f},{ACTIVE_UNTIL:.0f}); poll mean 2s,")
    rep.line("timeout 0.25s, <=3 retries/burst, jittered backoff.")
    rep.line()
    rep.line("shape check: drop=0 is fault-free (no timeouts, instant")
    rep.line("convergence); rising drop rates cost retries/resyncs and may")
    rep.line("flag answers degraded, but the mirror always reconverges to")
    rep.line("the live tables and the verdict always matches ground truth.")
    rep.save_json(
        {
            "chaos_window": [ACTIVE_FROM, ACTIVE_UNTIL],
            "convergence_limit_s": CONVERGENCE_LIMIT,
            "sweep": results,
        }
    )
    rep.finish()

    clean = results[0]
    assert clean["poll_timeouts"] == 0
    assert clean["reconverged_after"] == 0.0
    for outcome in results:
        assert outcome["verdict_correct"], outcome
        assert outcome["reconverged_after"] is not None, outcome
    # The armed diversion is visible at every drop rate once the mirror
    # has converged — loss delays detection, it never prevents it.
    for outcome in results:
        assert not outcome["mirror_optimal"], outcome

    benchmark(smoke_chaos)
