"""Tests for drop tracking in HSA and the dead-end audit."""

import pytest

from repro.attacks import BlackholeAttack
from repro.dataplane.topologies import isp_topology, linear_topology
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.network_tf import NetworkTransferFunction
from repro.hsa.reachability import ReachabilityAnalyzer
from repro.hsa.transfer import SnapshotRule, SwitchTransferFunction
from repro.hsa.wildcard import Wildcard
from repro.openflow.actions import Drop, Output
from repro.openflow.match import Match
from repro.testbed import build_testbed


def rule(match, actions, priority=0):
    return SnapshotRule(
        table_id=0, priority=priority, match=match, actions=tuple(actions)
    )


class TestApplyWithDrops:
    def test_table_miss_drops_everything(self):
        tf = SwitchTransferFunction("s1", [], ports=(1, 2))
        emissions, dropped = tf.apply_with_drops(1, HeaderSpace.all())
        assert emissions == []
        assert dropped == HeaderSpace.all()

    def test_forwarded_space_not_dropped(self):
        tf = SwitchTransferFunction(
            "s1", [rule(Match.any(), (Output(2),))], ports=(1, 2)
        )
        emissions, dropped = tf.apply_with_drops(1, HeaderSpace.all())
        assert len(emissions) == 1
        assert dropped.is_empty()

    def test_drop_rule_space_accounted(self):
        tf = SwitchTransferFunction(
            "s1",
            [
                rule(Match.build(tp_dst=80), (Drop(),), priority=10),
                rule(Match.any(), (Output(2),), priority=1),
            ],
            ports=(1, 2),
        )
        emissions, dropped = tf.apply_with_drops(1, HeaderSpace.all())
        assert dropped.contains_point(Wildcard.from_fields(tp_dst=80).value)
        assert not dropped.contains_point(Wildcard.from_fields(tp_dst=81).value)

    def test_partition_is_exact(self):
        tf = SwitchTransferFunction(
            "s1",
            [rule(Match.build(tp_dst=80), (Output(2),), priority=5)],
            ports=(1, 2),
        )
        emissions, dropped = tf.apply_with_drops(1, HeaderSpace.all())
        forwarded = emissions[0][1]
        assert HeaderSpace.all() == forwarded.union(dropped)
        assert not forwarded.overlaps(dropped)


class TestReachabilityDropCollection:
    def make_chain(self):
        dst = Match.build(ip_dst="10.0.0.9")
        tfs = {
            "s1": SwitchTransferFunction(
                "s1", [rule(dst, (Output(2),))], ports=(1, 2, 3)
            ),
            "s2": SwitchTransferFunction("s2", [], ports=(1, 2, 3)),
        }
        wiring = {("s1", 2): ("s2", 3), ("s2", 3): ("s1", 2)}
        edges = {"s1": frozenset([1]), "s2": frozenset([1])}
        return NetworkTransferFunction(tfs, wiring, edges)

    def test_midpath_drop_found(self):
        analyzer = ReachabilityAnalyzer(self.make_chain(), collect_drops=True)
        space = HeaderSpace.single(
            Wildcard.from_match(Match.build(ip_dst="10.0.0.9"))
        )
        result = analyzer.analyze("s1", 1, space)
        mid = [z for z in result.drops if z.depth > 0]
        assert len(mid) == 1
        assert mid[0].switch == "s2"

    def test_ingress_drop_depth_zero(self):
        analyzer = ReachabilityAnalyzer(self.make_chain(), collect_drops=True)
        # Traffic the first switch has no rule for dies at depth 0.
        space = HeaderSpace.single(
            Wildcard.from_match(Match.build(ip_dst="10.0.0.8"))
        )
        result = analyzer.analyze("s1", 1, space)
        assert result.drops and all(z.depth == 0 for z in result.drops)

    def test_disabled_by_default(self):
        analyzer = ReachabilityAnalyzer(self.make_chain())
        space = HeaderSpace.single(
            Wildcard.from_match(Match.build(ip_dst="10.0.0.9"))
        )
        assert analyzer.analyze("s1", 1, space).drops == []


class TestDeadEndAudit:
    def test_benign_network_has_no_dead_ends(self):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
        )
        assert bed.service.audit_dead_ends("alice") == []

    def test_blackhole_localized(self):
        bed = build_testbed(
            linear_topology(4, hosts_per_switch=1, clients=["a", "b"]),
            isolate_clients=True,
            seed=7,
        )
        # Drop a->a traffic NOT at its ingress but mid-path: install the
        # drop at s2 (transit for h1->h3).
        h1 = bed.topology.hosts["h1"]
        h3 = bed.topology.hosts["h3"]
        bed.provider.install_flow(
            "s2",
            Match(ip_src=h1.ip, ip_dst=h3.ip),
            (Drop(),),
            priority=20,
        )
        bed.run(0.5)
        dead_ends = bed.service.audit_dead_ends("a")
        assert dead_ends
        assert {z.switch for z in dead_ends} == {"s2"}
        assert all(z.depth > 0 for z in dead_ends)

    def test_ingress_guards_not_flagged(self):
        """The isolation policy's own guard drops are depth-0 policy,
        never reported as dead ends."""
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
        )
        bed.provider.compromise(BlackholeAttack("h_ber1", "h_fra1"))
        bed.run(0.5)
        # This blackhole sits at the *ingress* switch of the victim flow
        # (ber), where alice's own traffic enters -> depth 0 from ber,
        # but alice's other hosts' traffic toward h_fra1... still flows.
        dead_ends = bed.service.audit_dead_ends("alice")
        # The drop happens at depth 0 relative to the h_ber1 ingress, so
        # the audit (mid-path only) stays quiet; detection of this case
        # belongs to ReachingSourcesQuery instead.
        assert dead_ends == []
