"""Public API surface checks: exports resolve, docstrings exist.

These meta-tests keep the package honest as it grows: every name in an
``__all__`` must be importable from that module, and every public module
and class must carry a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.netlib",
    "repro.crypto",
    "repro.openflow",
    "repro.dataplane",
    "repro.controlplane",
    "repro.hsa",
    "repro.attacks",
    "repro.baselines",
    "repro.core",
]


def iter_modules():
    seen = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        seen.add(package_name)
        for info in pkgutil.iter_modules(package.__path__, package_name + "."):
            if info.name not in seen:
                seen.add(info.name)
                yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize(
    "module",
    [m for m in ALL_MODULES if hasattr(m, "__all__")],
    ids=lambda m: m.__name__,
)
def test_all_exports_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_documented(module):
    for name, obj in vars(module).items():
        if name.startswith("_") or not inspect.isclass(obj):
            continue
        if obj.__module__ != module.__name__:
            continue  # re-export; documented at its home
        assert obj.__doc__ and obj.__doc__.strip(), (
            f"{module.__name__}.{name} lacks a docstring"
        )


def test_top_level_quickstart_names():
    """The names the README quickstart uses must exist at top level."""
    for name in (
        "build_testbed",
        "isp_topology",
        "IsolationQuery",
        "BandwidthQuery",
        "ExposureHistoryQuery",
        "RVaaSController",
        "RVaaSClient",
    ):
        assert hasattr(repro, name), name


def test_version_is_sane():
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(part.isdigit() for part in parts)
