"""Unit and property tests for header-space set algebra."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hsa.headerspace import HeaderSpace
from repro.hsa.wildcard import Wildcard


@st.composite
def wildcards(draw):
    mask = draw(st.integers(min_value=0, max_value=(1 << 48) - 1))
    value = draw(st.integers(min_value=0, max_value=(1 << 48) - 1)) & mask
    return Wildcard(value=value, mask=mask)


@st.composite
def spaces(draw):
    return HeaderSpace(draw(st.lists(wildcards(), max_size=4)))


@st.composite
def points(draw):
    return draw(st.integers(min_value=0, max_value=(1 << 48) - 1))


def tp(dport):
    return Wildcard.from_fields(tp_dst=dport)


class TestBasics:
    def test_empty(self):
        assert HeaderSpace.empty().is_empty()
        assert not HeaderSpace.all().is_empty()

    def test_contains_point(self):
        space = HeaderSpace.single(tp(80))
        assert space.contains_point(tp(80).value)
        assert not space.contains_point(tp(81).value)

    def test_union_contains_both(self):
        space = HeaderSpace.single(tp(80)).union(HeaderSpace.single(tp(81)))
        assert space.contains_point(tp(80).value)
        assert space.contains_point(tp(81).value)

    def test_union_prunes_subsumed(self):
        space = HeaderSpace.all().union(HeaderSpace.single(tp(80)))
        assert space.complexity() == 1

    def test_intersect(self):
        a = HeaderSpace.single(tp(80))
        b = HeaderSpace.single(Wildcard.from_fields(ip_proto=17))
        joined = a.intersect(b)
        assert not joined.is_empty()
        assert joined.wildcards[0].field_constraint("tp_dst")[0] == 80

    def test_intersect_disjoint_is_empty(self):
        assert HeaderSpace.single(tp(80)).intersect(
            HeaderSpace.single(tp(81))
        ).is_empty()

    def test_subtract_then_disjoint(self):
        remaining = HeaderSpace.all().subtract(HeaderSpace.single(tp(80)))
        assert not remaining.is_empty()
        assert not remaining.overlaps(HeaderSpace.single(tp(80)))

    def test_complement_partitions(self):
        space = HeaderSpace.single(tp(80))
        complement = space.complement()
        assert not complement.overlaps(space)
        assert HeaderSpace.all().is_subset_of(space.union(complement))

    def test_subset(self):
        narrow = HeaderSpace.single(Wildcard.from_fields(tp_dst=80, ip_proto=17))
        wide = HeaderSpace.single(tp(80))
        assert narrow.is_subset_of(wide)
        assert not wide.is_subset_of(narrow)

    def test_semantic_equality(self):
        a = HeaderSpace((tp(80), tp(81)))
        b = HeaderSpace((tp(81), tp(80)))
        assert a == b
        assert a != HeaderSpace.single(tp(80))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(HeaderSpace.empty())

    def test_sample(self):
        rng = random.Random(0)
        space = HeaderSpace.single(tp(80))
        assert space.contains_point(space.sample(rng))
        assert HeaderSpace.empty().sample(rng) is None

    def test_size_bound(self):
        assert HeaderSpace.empty().size_log2_upper_bound() == float("-inf")
        assert HeaderSpace.all().size_log2_upper_bound() >= 200

    def test_describe_truncates(self):
        space = HeaderSpace(tuple(tp(i) for i in range(10)))
        assert "+6" in space.describe(limit=4)


class TestCompaction:
    def test_adjacent_pair_merges(self):
        a = Wildcard.from_fields(tp_dst=80)  # ...1010000
        b = Wildcard.from_fields(tp_dst=81)  # ...1010001
        compacted = HeaderSpace((a, b)).compact()
        assert compacted.complexity() == 1
        assert compacted.contains_point(a.value)
        assert compacted.contains_point(b.value)

    def test_full_subtract_complement_recompacts(self):
        """all() minus one wildcard then compacted back with it == all()."""
        w = Wildcard.from_fields(tp_dst=80, ip_proto=17)
        pieces = HeaderSpace.all().subtract(HeaderSpace.single(w))
        rebuilt = pieces.union(HeaderSpace.single(w)).compact()
        assert rebuilt.complexity() == 1
        assert rebuilt == HeaderSpace.all()

    def test_non_adjacent_untouched(self):
        a = Wildcard.from_fields(tp_dst=80)
        b = Wildcard.from_fields(tp_dst=83)  # differs in 2 bits
        assert HeaderSpace((a, b)).compact().complexity() == 2

    @settings(max_examples=100)
    @given(spaces(), points())
    def test_compact_preserves_semantics(self, a, p):
        assert a.compact().contains_point(p) == a.contains_point(p)

    @settings(max_examples=50)
    @given(spaces())
    def test_compact_never_grows(self, a):
        assert a.compact().complexity() <= max(a.complexity(), 1) or a.is_empty()


class TestPointSemantics:
    @settings(max_examples=150)
    @given(spaces(), spaces(), points())
    def test_union_semantics(self, a, b, p):
        assert a.union(b).contains_point(p) == (
            a.contains_point(p) or b.contains_point(p)
        )

    @settings(max_examples=150)
    @given(spaces(), spaces(), points())
    def test_intersect_semantics(self, a, b, p):
        assert a.intersect(b).contains_point(p) == (
            a.contains_point(p) and b.contains_point(p)
        )

    @settings(max_examples=150)
    @given(spaces(), spaces(), points())
    def test_subtract_semantics(self, a, b, p):
        assert a.subtract(b).contains_point(p) == (
            a.contains_point(p) and not b.contains_point(p)
        )

    @settings(max_examples=100)
    @given(spaces())
    def test_subtract_self_is_empty(self, a):
        assert a.subtract(a).is_empty()

    @settings(max_examples=100)
    @given(spaces(), spaces())
    def test_subset_iff_subtract_empty(self, a, b):
        assert a.is_subset_of(b) == a.subtract(b).is_empty()

    @settings(max_examples=100)
    @given(spaces(), points())
    def test_complement_semantics(self, a, p):
        assert a.complement().contains_point(p) == (not a.contains_point(p))
