"""Tests for the client-facing exposure-history query (§IV-C)."""

import pytest

from repro.attacks import JoinAttack
from repro.core.queries import ExposureHistoryQuery
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


def flap_attack(bed, attacker="h_ber2", victim="h_fra1", hold=0.4):
    attack = JoinAttack(attacker, victim)
    bed.provider.compromise(attack)
    bed.run(hold)
    bed.provider.retreat(attack)
    bed.run(hold)
    return attack


class TestExposureHistoryQuery:
    def test_clean_history(self, bed):
        bed.run(0.5)
        answer = bed.ask("alice", ExposureHistoryQuery()).response.answer
        assert not answer.any_exposure
        assert {r.host for r in answer.reports} == {"h_ber1", "h_fra1", "h_par1"}
        assert answer.history_entries_analyzed > 0

    def test_removed_attack_still_reported(self, bed):
        """The point of the query: the client was offline during the
        attack, the configuration is clean again, yet the answer shows
        the past exposure with its window and ingress."""
        flap_attack(bed)
        answer = bed.ask("alice", ExposureHistoryQuery()).response.answer
        assert answer.any_exposure
        exposed = next(r for r in answer.reports if r.host == "h_fra1")
        window = exposed.windows[0]
        assert window.closed_at is not None
        assert {e.host for e in window.ingress_endpoints} == {"h_ber2"}

    def test_victim_host_filter(self, bed):
        flap_attack(bed)
        answer = bed.ask(
            "alice", ExposureHistoryQuery(victim_host="h_par1")
        ).response.answer
        assert {r.host for r in answer.reports} == {"h_par1"}
        assert not answer.any_exposure

    def test_open_window_reported(self, bed):
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.4)
        answer = bed.service.answer_locally("alice", ExposureHistoryQuery())
        exposed = next(r for r in answer.reports if r.host == "h_fra1")
        assert exposed.windows[-1].closed_at is None

    def test_local_and_inband_agree(self, bed):
        flap_attack(bed)
        local = bed.service.answer_locally("alice", ExposureHistoryQuery())
        inband = bed.ask("alice", ExposureHistoryQuery()).response.answer
        assert local.any_exposure == inband.any_exposure
        assert len(local.reports) == len(inband.reports)

    def test_other_client_sees_nothing_about_alice(self, bed):
        flap_attack(bed)
        answer = bed.service.answer_locally("bob", ExposureHistoryQuery())
        # bob's own report covers only bob's hosts.
        assert {r.host for r in answer.reports} == {"h_ber2", "h_ams1", "h_off1"}
