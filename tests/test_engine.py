"""VerificationEngine: incremental compilation, memoization, delta feeds.

Covers the acceptance criteria of the incremental-verification refactor:
a single-switch rule change recompiles exactly one
``SwitchTransferFunction`` (asserted via engine counters), repeated
queries on an unchanged snapshot reuse one propagation, and every answer
produced through the warm engine equals a cold, cache-free run —
including under hypothesis-generated FlowMod churn sequences.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import SnapshotDelta, VerificationEngine
from repro.core.emulation import EmulationVerifier
from repro.core.protocol import ClientRegistration, HostRecord
from repro.core.snapshot import NetworkSnapshot
from repro.core.verifier import LogicalVerifier
from repro.crypto.keys import generate_keypair
from repro.dataplane.topologies import linear_topology
from repro.hsa.transfer import SnapshotRule
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import Drop, Output
from repro.openflow.match import Match
from repro.testbed import build_testbed

# ----------------------------------------------------------------------
# Synthetic chain fixture (no simulator needed): s1 - s2 - s3 - s4,
# edge port 1 on every switch, two hosts of one client at the ends.
# ----------------------------------------------------------------------

CHAIN = ("s1", "s2", "s3", "s4")
WIRING = {
    ("s1", 2): ("s2", 3),
    ("s2", 3): ("s1", 2),
    ("s2", 2): ("s3", 3),
    ("s3", 3): ("s2", 2),
    ("s3", 2): ("s4", 3),
    ("s4", 3): ("s3", 2),
}
EDGE_PORTS = {name: frozenset([1]) for name in CHAIN}
SWITCH_PORTS = {name: (1, 2, 3) for name in CHAIN}
IP_H1 = IPv4Address.parse("10.0.0.1")
IP_H2 = IPv4Address.parse("10.0.0.2")

_KEYS = generate_keypair("prop-client", rng=random.Random(7))

REGISTRATIONS = {
    "a": ClientRegistration(
        name="a",
        public_key=_KEYS.public,
        hosts=(
            HostRecord(
                name="h1", ip=IP_H1.value, switch="s1", port=1, public_key=_KEYS.public
            ),
            HostRecord(
                name="h2", ip=IP_H2.value, switch="s4", port=1, public_key=_KEYS.public
            ),
        ),
    )
}


def base_config() -> dict:
    """Shortest-path forwarding between h1 and h2 along the chain."""
    config: dict = {name: [] for name in CHAIN}
    toward_s1 = {"s1": 1, "s2": 3, "s3": 3, "s4": 3}
    toward_s4 = {"s1": 2, "s2": 2, "s3": 2, "s4": 1}
    for name in CHAIN:
        config[name].append(
            SnapshotRule(
                table_id=0,
                priority=10,
                match=Match.build(ip_dst="10.0.0.1"),
                actions=(Output(toward_s1[name]),),
            )
        )
        config[name].append(
            SnapshotRule(
                table_id=0,
                priority=10,
                match=Match.build(ip_dst="10.0.0.2"),
                actions=(Output(toward_s4[name]),),
            )
        )
    return config


def snapshot_from(config: dict, version: int = 1) -> NetworkSnapshot:
    return NetworkSnapshot(
        version=version,
        taken_at=float(version),
        rules={name: tuple(rules) for name, rules in config.items()},
        meters=(),
        wiring=WIRING,
        edge_ports=EDGE_PORTS,
        switch_ports=SWITCH_PORTS,
    )


def delta_between(
    old: NetworkSnapshot, new: NetworkSnapshot
) -> SnapshotDelta:
    added, removed = new.diff(old)
    return SnapshotDelta(
        since_version=old.version,
        version=new.version,
        added_rules=added,
        removed_rules=removed,
        changed_switches=frozenset(s for s, _ in added | removed),
    )


# ----------------------------------------------------------------------
# Per-switch compiled-artifact caching
# ----------------------------------------------------------------------


class TestSwitchTFCache:
    def test_unchanged_snapshot_compiles_each_switch_once(self):
        engine = VerificationEngine()
        engine.compile(snapshot_from(base_config(), version=1))
        assert engine.metrics.switch_tf_misses == len(CHAIN)
        # Same content, new version: everything is a hit.
        engine.compile(snapshot_from(base_config(), version=2))
        assert engine.metrics.switch_tf_misses == len(CHAIN)
        assert engine.metrics.network_tf_hits == 1

    def test_one_changed_switch_recompiles_one_tf(self):
        engine = VerificationEngine()
        config = base_config()
        engine.compile(snapshot_from(config, version=1))
        misses_before = engine.metrics.switch_tf_misses
        config["s2"].append(
            SnapshotRule(
                table_id=0,
                priority=1,
                match=Match.build(tp_dst=9999),
                actions=(Drop(),),
            )
        )
        engine.compile(snapshot_from(config, version=2))
        assert engine.metrics.switch_tf_misses == misses_before + 1
        assert engine.metrics.switch_tf_hits >= len(CHAIN) - 1
        assert engine.metrics.incremental_builds == 1

    def test_incremental_build_shares_role_map(self):
        engine = VerificationEngine()
        config = base_config()
        first = engine.compile(snapshot_from(config, version=1))
        config["s3"].append(
            SnapshotRule(
                table_id=0,
                priority=1,
                match=Match.build(tp_dst=1234),
                actions=(Drop(),),
            )
        )
        second = engine.compile(snapshot_from(config, version=2))
        assert second is not first
        assert second._roles is first._roles
        for name in CHAIN:
            same = second.transfer_functions[name] is first.transfer_functions[name]
            assert same == (name != "s3")


class TestReachabilityMemo:
    # These two tests assert the *wildcard* propagation memo's counters;
    # under the atom backend the same queries are served from the
    # reachability matrix and never propagate at all, so the engine is
    # pinned to the mechanism under test.
    def test_repeated_query_reuses_propagation(self):
        engine = VerificationEngine(backend="wildcard")
        verifier = LogicalVerifier(
            REGISTRATIONS, engine=engine, exclude_own_interception=False
        )
        snapshot = snapshot_from(base_config())
        registration = REGISTRATIONS["a"]
        first = verifier.reachable_destinations(registration, snapshot)
        misses = engine.metrics.reach_misses
        second = verifier.reachable_destinations(registration, snapshot)
        assert second == first
        assert engine.metrics.reach_misses == misses
        assert engine.metrics.reach_hits >= 2  # one per host

    def test_isolation_reuses_destination_propagations(self):
        engine = VerificationEngine(backend="wildcard")
        verifier = LogicalVerifier(
            REGISTRATIONS, engine=engine, exclude_own_interception=False
        )
        snapshot = snapshot_from(base_config())
        registration = REGISTRATIONS["a"]
        verifier.reachable_destinations(registration, snapshot)
        hits_before = engine.metrics.reach_hits
        verifier.isolation(registration, snapshot)
        assert engine.metrics.reach_hits > hits_before


class TestDeltaInvalidation:
    def test_delta_evicts_only_changed_switch_entries(self):
        engine = VerificationEngine()
        old = snapshot_from(base_config(), version=1)
        engine.compile(old)
        config = base_config()
        config["s2"].append(
            SnapshotRule(
                table_id=0,
                priority=1,
                match=Match.build(tp_dst=4242),
                actions=(Drop(),),
            )
        )
        new = snapshot_from(config, version=2)
        delta = delta_between(old, new)
        assert delta.changed_switches == frozenset({"s2"})
        evicted = engine.apply_delta(delta)
        assert evicted == 1  # exactly the s2 entry
        misses_before = engine.metrics.switch_tf_misses
        engine.compile(new)
        assert engine.metrics.switch_tf_misses == misses_before + 1

    def test_empty_delta_is_noop(self):
        engine = VerificationEngine()
        engine.compile(snapshot_from(base_config()))
        assert engine.apply_delta(SnapshotDelta(since_version=1, version=2)) == 0

    def test_analyzer_cache_evicts_lru_not_wholesale(self):
        engine = VerificationEngine(max_network_entries=2)
        variants = []
        for tp_dst in (1001, 1002, 1003):
            config = base_config()
            config["s2"].append(
                SnapshotRule(
                    table_id=0,
                    priority=1,
                    match=Match.build(tp_dst=tp_dst),
                    actions=(Drop(),),
                )
            )
            variants.append(snapshot_from(config, version=tp_dst))
        first = engine.analyzer(variants[0])
        engine.analyzer(variants[1])
        assert engine.analyzer(variants[0]) is first  # touch: now MRU
        engine.analyzer(variants[2])  # evicts variants[1], the LRU
        assert len(engine._analyzers) == 2
        assert engine.analyzer(variants[0]) is first  # hot entry survived

    def test_wiring_change_clears_network_caches(self):
        engine = VerificationEngine()
        engine.compile(snapshot_from(base_config()))
        delta = SnapshotDelta(since_version=1, version=2, wiring_changed=True)
        assert engine.apply_delta(delta) >= 1
        assert engine.metrics.delta_invalidations >= 1
        # Compiling again is a full network build, not an incremental one.
        builds = engine.metrics.incremental_builds
        engine.compile(snapshot_from(base_config(), version=2))
        assert engine.metrics.incremental_builds == builds


# ----------------------------------------------------------------------
# Acceptance: end-to-end single-switch change on a 16-switch topology
# ----------------------------------------------------------------------


class TestEndToEndIncremental:
    def test_single_rule_change_recompiles_exactly_one_switch(self):
        bed = build_testbed(
            linear_topology(16, clients=["a", "b"]), isolate_clients=True, seed=11
        )
        assert len(bed.topology.switches) >= 16
        engine = bed.service.engine
        registration = bed.registrations["a"]
        # Warm the caches with one full query.
        baseline = bed.service.verifier.reachable_destinations(
            registration, bed.service.snapshot()
        )
        misses_before = engine.metrics.switch_tf_misses
        # One FlowMod on one switch, observed passively by the monitor.
        bed.provider.install_flow(
            "s8",
            Match.build(ip_dst="203.0.113.77", tp_dst=31337),
            (Drop(),),
            priority=3,
        )
        bed.run(0.05)
        after = bed.service.verifier.reachable_destinations(
            registration, bed.service.snapshot()
        )
        assert engine.metrics.switch_tf_misses == misses_before + 1
        # The clutter rule matches no client traffic: answers identical.
        assert after == baseline

    def test_service_answers_match_cold_verifier(self):
        bed = build_testbed(
            linear_topology(6, clients=["a", "b"]), isolate_clients=True, seed=12
        )
        registration = bed.registrations["a"]
        # Covert access point (join-attack shape) so the comparison
        # covers a violated configuration too, as in E3/E7.
        bed.provider.install_flow(
            "s3",
            Match.build(ip_dst=str(IPv4Address(registration.hosts[0].ip))),
            (Output(2), Output(1)),
            priority=60,
        )
        bed.run(0.05)
        snapshot = bed.service.snapshot()
        warm = bed.service.verifier
        for _ in range(2):  # second pass is fully cache-served
            for cold in (LogicalVerifier(bed.registrations),):
                assert warm.reachable_destinations(
                    registration, snapshot
                ) == cold.reachable_destinations(registration, snapshot)
                assert warm.isolation(registration, snapshot) == cold.isolation(
                    registration, snapshot
                )
                assert warm.reaching_sources(
                    registration, snapshot
                ) == cold.reaching_sources(registration, snapshot)
                assert warm.geo_location(registration, snapshot) == cold.geo_location(
                    registration, snapshot
                )
                assert warm.transfer_function(
                    registration, snapshot
                ) == cold.transfer_function(registration, snapshot)


class TestOrderSensitiveCaching:
    """A removed-and-re-added rule changes install order — the exact
    churn flapping produces.  Equal-priority tie-breaks make the two
    orders behave differently on the data plane, so they must not share
    a cache key, and the warm engine must stay correct even when no
    delta is ever applied (content-addressing alone carries correctness).
    """

    def test_remove_readd_reorder_is_a_distinct_cache_key(self):
        from repro.hsa.headerspace import HeaderSpace
        from repro.hsa.reachability import ReachabilityAnalyzer

        engine = VerificationEngine()
        config = base_config()
        rule_to_h2 = config["s1"][1]
        config["s1"].append(
            SnapshotRule(
                table_id=0,
                priority=10,  # ties with the forwarding rules
                match=Match.build(),
                actions=(Drop(),),
            )
        )
        first = snapshot_from(config, version=1)
        # Flap rule_to_h2: remove + re-install puts it behind the
        # match-all drop, which now wins the first-installed tie-break.
        config["s1"].remove(rule_to_h2)
        config["s1"].append(rule_to_h2)
        second = snapshot_from(config, version=2)
        assert first.switch_content_hash("s1") != second.switch_content_hash("s1")
        space = HeaderSpace.all()
        reaches_h2 = []
        for snapshot in (first, second):  # deltas deliberately NOT applied
            warm_result = engine.analyze(snapshot, "s1", 1, space)
            cold_result = ReachabilityAnalyzer(snapshot.network_tf()).analyze(
                "s1", 1, space
            )
            assert warm_result.edge_port_refs() == cold_result.edge_port_refs()
            reaches_h2.append(warm_result.reaches("s4", 1))
        # The reorder really changed the data plane (h2 became
        # unreachable), so a shared cache key would have been wrong.
        assert reaches_h2 == [True, False]


class TestEmulationArtifactCache:
    def test_shadow_network_built_once_per_content(self):
        bed = build_testbed(
            linear_topology(4, clients=["a", "b"]), isolate_clients=False, seed=13
        )
        engine = bed.service.engine
        emulator = EmulationVerifier(bed.registrations, engine=engine)
        snapshot = bed.service.snapshot()
        registration = bed.registrations["a"]
        first = emulator.reachable_destinations(registration, snapshot)
        second = emulator.reachable_destinations(registration, snapshot)
        assert first == second
        assert emulator.shadows_built == 1
        assert engine.metrics.artifact_hits >= 1


# ----------------------------------------------------------------------
# Property: warm engine == cold, cache-free run under random churn
# ----------------------------------------------------------------------

_RULE_POOL = [
    SnapshotRule(
        table_id=0,
        priority=priority,
        match=Match.build(ip_dst=ip, tp_dst=tp),
        actions=actions,
    )
    for priority in (1, 20)
    for ip in ("10.0.0.1", "10.0.0.2")
    for tp in (None, 80)
    for actions in ((Output(1),), (Output(2),), (Output(3),), (Drop(),))
]


def churn_strategy():
    """FlowMods: (switch, install?, rule index, deliver delta?).

    Delta delivery is drawn per step so the property also covers lost
    deltas: correctness must come from content-addressed cache keys
    alone, with ``apply_delta`` only an eviction optimization.
    """
    return st.lists(
        st.tuples(
            st.sampled_from(CHAIN),
            st.booleans(),
            st.integers(min_value=0, max_value=len(_RULE_POOL) - 1),
            st.booleans(),
        ),
        min_size=1,
        max_size=8,
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(churn=churn_strategy())
def test_warm_engine_equals_cold_run_under_churn(churn):
    engine = VerificationEngine()
    warm = LogicalVerifier(
        REGISTRATIONS, engine=engine, exclude_own_interception=False
    )
    registration = REGISTRATIONS["a"]
    config = {name: dict() for name in CHAIN}
    for name, rule_list in base_config().items():
        for rule in rule_list:
            config[name][rule.identity()] = rule
    previous = snapshot_from(
        {name: list(rules.values()) for name, rules in config.items()}, version=1
    )
    for step, (switch, install, index, deliver_delta) in enumerate(churn, start=2):
        rule = _RULE_POOL[index]
        if install:
            # dict re-insertion reorders the rule sequence under
            # remove/re-add flapping, exercising order-sensitive keys
            config[switch].pop(rule.identity(), None)
            config[switch][rule.identity()] = rule
        else:
            config[switch].pop(rule.identity(), None)
        snapshot = snapshot_from(
            {name: list(rules.values()) for name, rules in config.items()},
            version=step,
        )
        if deliver_delta:
            engine.apply_delta(delta_between(previous, snapshot))
        previous = snapshot
        cold = LogicalVerifier(REGISTRATIONS, exclude_own_interception=False)
        assert warm.reachable_destinations(
            registration, snapshot
        ) == cold.reachable_destinations(registration, snapshot)
        assert warm.isolation(registration, snapshot) == cold.isolation(
            registration, snapshot
        )
        assert warm.reaching_sources(
            registration, snapshot
        ) == cold.reaching_sources(registration, snapshot)
