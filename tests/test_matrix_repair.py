"""Differential tests for delta-driven reachability-matrix repair.

The repair path (PR 6) must be invisible in every answer: a matrix
produced by :func:`~repro.hsa.reachability.repair_reachability_matrix`
(rows carried over and renumbered, only touched rows re-propagated) must
be *byte-identical* to the matrix a cold rebuild would produce for the
same snapshot.  Three layers of evidence, mirroring the PR-4 suite:

* **Matrix level** — random FlowMod/port-change delta streams applied
  to one repairing engine vs a repair-disabled engine; every version's
  matrices must agree on rows, zones, reach and traversed sets (the
  ``expansions`` telemetry counter is deliberately excluded: merged
  rewrite pins can legally change how often a covered branch re-expands
  without changing any recorded set).
* **Oracle level** — repaired matrices against the frozen
  :mod:`repro.hsa.reference` analyzer on the final snapshot.
* **Verifier level** — signed answer payloads under churn from a
  repairing atom engine vs the wildcard engine.

Plus unit tests for the safety valves (touched-fraction fallback, wiring
surgery, atom-count overflow) and the row-reuse/identity guarantees.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import SnapshotDelta, VerificationEngine
from repro.core.snapshot import NetworkSnapshot
from repro.core.verifier import LogicalVerifier
from repro.hsa.atoms import GLOBAL_ATOM_TABLE, AtomRemap, RemapInexact
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.reference import (
    ReferenceReachabilityAnalyzer,
    reference_network_tf,
)
from repro.hsa.transfer import SnapshotRule
from repro.openflow.actions import Drop, Output
from repro.openflow.match import Match
from tests.test_atoms_differential import (
    EDGE_PORTS,
    IPS,
    REGISTRATIONS,
    SWITCHES,
    SWITCH_PORTS,
    WIRING,
    config_strategy,
    rule_strategy,
    scope_strategy,
    snapshot_from,
)

EXTENDED_PORTS = (1, 2, 3, 4)  # port 4 is unbound: Flood grows a zone


def snapshot_with(config, ports, version: int) -> NetworkSnapshot:
    return NetworkSnapshot(
        version=version,
        taken_at=0.0,
        rules={name: tuple(rules) for name, rules in config.items()},
        meters=(),
        wiring=WIRING,
        edge_ports=EDGE_PORTS,
        switch_ports=dict(ports),
    )


def op_strategy():
    """One delta-stream operation: FlowMod add/remove or a port change."""
    adds = st.tuples(
        st.just("add"), st.sampled_from(SWITCHES), rule_strategy()
    )
    removes = st.tuples(
        st.just("remove"),
        st.sampled_from(SWITCHES),
        st.integers(min_value=0, max_value=7),
    )
    ports = st.tuples(
        st.just("ports"), st.sampled_from(SWITCHES), st.none()
    )
    return st.one_of(adds, adds, removes, ports)


def apply_op(state, ports, op) -> str:
    """Mutate the config/ports in place; return the touched switch."""
    kind, switch, payload = op
    if kind == "add":
        state[switch] = list(state[switch]) + [payload]
    elif kind == "remove":
        rules = list(state[switch])
        if rules:
            rules.pop(payload % len(rules))
        state[switch] = rules
    else:  # "ports"
        ports[switch] = (
            EXTENDED_PORTS if ports[switch] == SWITCH_PORTS[switch] else SWITCH_PORTS[switch]
        )
    return switch


def assert_matrices_equal(repaired, cold, context=""):
    """Byte-level agreement on everything queries can observe."""
    assert repaired.space is cold.space, context
    assert repaired.ingresses() == cold.ingresses(), context
    for ref in cold.ingresses():
        fixed = repaired.row(ref)
        fresh = cold.row(ref)
        assert fixed.zones == fresh.zones, (context, ref)
        assert fixed.reach == fresh.reach, (context, ref)
        assert fixed.traversed == fresh.traversed, (context, ref)


def atom_pair(engine, snapshot):
    pair = engine.atom_artifacts(snapshot)
    assert pair is not None, "universe unexpectedly overflowed"
    return pair


# ----------------------------------------------------------------------
# Matrix level: repaired == cold rebuild across random delta streams
# ----------------------------------------------------------------------


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    config=config_strategy(),
    ops=st.lists(op_strategy(), min_size=1, max_size=5),
)
def test_repaired_matrix_equals_cold_rebuild(config, ops):
    repairing = VerificationEngine(backend="atom")
    rebuilding = VerificationEngine(backend="atom", matrix_repair=False)
    state = {name: list(rules) for name, rules in config.items()}
    ports = dict(SWITCH_PORTS)
    version = 1
    snapshot = snapshot_with(state, ports, version)
    assert_matrices_equal(
        atom_pair(repairing, snapshot)[1],
        atom_pair(rebuilding, snapshot)[1],
        "cold start",
    )
    for op in ops:
        touched = apply_op(state, ports, op)
        since, version = version, version + 1
        snapshot = snapshot_with(state, ports, version)
        delta = SnapshotDelta(
            since_version=since,
            version=version,
            changed_switches=frozenset([touched]),
        )
        repairing.apply_delta(delta)
        rebuilding.apply_delta(delta)
        _, repaired = atom_pair(repairing, snapshot)
        _, cold = atom_pair(rebuilding, snapshot)
        assert_matrices_equal(repaired, cold, f"after {op}")
    assert rebuilding.metrics.matrix_repairs == 0


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    config=config_strategy(),
    ops=st.lists(op_strategy(), min_size=1, max_size=4),
)
def test_repaired_matrix_matches_reference_oracle(config, ops):
    """The final repaired matrix agrees with the frozen oracle."""
    engine = VerificationEngine(backend="atom")
    state = {name: list(rules) for name, rules in config.items()}
    ports = dict(SWITCH_PORTS)
    version = 1
    engine.compile(snapshot_with(state, ports, version))
    for op in ops:
        touched = apply_op(state, ports, op)
        since, version = version, version + 1
        engine.apply_delta(
            SnapshotDelta(
                since_version=since,
                version=version,
                changed_switches=frozenset([touched]),
            )
        )
    snapshot = snapshot_with(state, ports, version)
    space, matrix = atom_pair(engine, snapshot)
    ntf = snapshot.network_tf()
    reference = ReferenceReachabilityAnalyzer(reference_network_tf(ntf))
    full = space.full_bits
    for switch in SWITCHES:
        result = reference.analyze(switch, 1, HeaderSpace.all())
        row = matrix.row((switch, 1))
        expected = {}
        for zone in result.zones:
            key = (zone.kind, zone.switch, zone.port)
            expected[key] = expected.get(key, HeaderSpace.empty()).union(
                zone.space
            )
        assert {k for k, bits in row.reach.items() if bits} == set(expected)
        for key, want in expected.items():
            arrived = matrix.arrived_space((switch, 1), key, full)
            assert space.decode(arrived) == want, (switch, key)
        assert {
            name for name, bits in row.traversed.items() if bits
        } == result.switches_traversed


# ----------------------------------------------------------------------
# Verifier level: signed answers under churn, repairing vs wildcard
# ----------------------------------------------------------------------


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    config=config_strategy(),
    ops=st.lists(op_strategy(), min_size=1, max_size=3),
    scope=scope_strategy(),
)
def test_repaired_answers_byte_identical_under_churn(config, ops, scope):
    wildcard = LogicalVerifier(
        REGISTRATIONS, engine=VerificationEngine(backend="wildcard")
    )
    atom = LogicalVerifier(
        REGISTRATIONS, engine=VerificationEngine(backend="atom")
    )
    state = {name: list(rules) for name, rules in config.items()}
    ports = dict(SWITCH_PORTS)
    version = 1
    snapshots = [snapshot_with(state, ports, version)]
    deltas = [None]
    for op in ops:
        touched = apply_op(state, ports, op)
        since, version = version, version + 1
        snapshots.append(snapshot_with(state, ports, version))
        deltas.append(
            SnapshotDelta(
                since_version=since,
                version=version,
                changed_switches=frozenset([touched]),
            )
        )
    for snapshot, delta in zip(snapshots, deltas):
        if delta is not None:
            wildcard.engine.apply_delta(delta)
            atom.engine.apply_delta(delta)
        for registration in REGISTRATIONS.values():
            assert wildcard.reachable_destinations(
                registration, snapshot, scope
            ) == atom.reachable_destinations(registration, snapshot, scope)
            assert wildcard.reaching_sources(
                registration, snapshot, scope
            ) == atom.reaching_sources(registration, snapshot, scope)
            assert wildcard.geo_location(
                registration, snapshot, scope
            ) == atom.geo_location(registration, snapshot, scope)


# ----------------------------------------------------------------------
# Unit level: row reuse, safety valves, renumbering corners
# ----------------------------------------------------------------------

BASE = {
    "s1": [],  # edge-only: its row never leaves s1
    "s2": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(2),))],
    "s3": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(1),))],
}


def churn_s3(base):
    changed = {name: list(rules) for name, rules in base.items()}
    changed["s3"] = changed["s3"] + [
        SnapshotRule(0, 9, Match(ip_dst=IPS[0]), (Drop(),))
    ]
    return changed


def test_repair_reuses_untouched_rows_by_identity():
    """Same universe + untouched traversal set => the very same row."""
    engine = VerificationEngine(backend="atom")
    _, before = atom_pair(engine, snapshot_from(BASE, version=1))
    engine.apply_delta(
        SnapshotDelta(
            since_version=1, version=2, changed_switches=frozenset(["s3"])
        )
    )
    # The added rule uses only already-registered constants, so the
    # universe is unchanged and reused rows are carried by identity.
    _, after = atom_pair(engine, snapshot_from(churn_s3(BASE), version=2))
    metrics = engine.metrics
    assert metrics.matrix_repairs == 1
    assert metrics.atom_matrix_builds == 1
    assert metrics.rows_reused == 1  # s1's row: traverses only s1
    assert metrics.rows_repaired == 2  # s2 and s3 rows traverse s3
    assert after.row(("s1", 1)) is before.row(("s1", 1))
    assert after.row(("s3", 1)) is not before.row(("s3", 1))


def test_repair_split_renumbers_reused_rows():
    """A new match constant refines the universe: reused rows are
    renumbered through the cell table, and answers still agree."""
    engine = VerificationEngine(backend="atom")
    engine.compile(snapshot_from(BASE, version=1))
    changed = {name: list(rules) for name, rules in BASE.items()}
    changed["s3"] = changed["s3"] + [
        SnapshotRule(0, 9, Match(tp_dst=4242), (Drop(),))  # new constant
    ]
    engine.apply_delta(
        SnapshotDelta(
            since_version=1, version=2, changed_switches=frozenset(["s3"])
        )
    )
    _, repaired = atom_pair(engine, snapshot_from(changed, version=2))
    assert engine.metrics.matrix_repairs == 1
    assert engine.metrics.atoms_split >= 1
    cold = VerificationEngine(backend="atom", matrix_repair=False)
    _, rebuilt = atom_pair(cold, snapshot_from(changed, version=2))
    assert_matrices_equal(repaired, rebuilt, "after split")


def test_repair_merge_when_constant_retired():
    """Removing the only rule naming a constant coarsens the universe;
    the merge direction must also match a cold rebuild byte for byte."""
    base = churn_s3(BASE)
    base["s2"] = base["s2"] + [
        SnapshotRule(0, 9, Match(tp_dst=4242), (Drop(),))
    ]
    engine = VerificationEngine(backend="atom")
    engine.compile(snapshot_from(base, version=1))
    shrunk = {name: list(rules) for name, rules in base.items()}
    shrunk["s2"] = shrunk["s2"][:-1]  # retire tp_dst=4242
    engine.apply_delta(
        SnapshotDelta(
            since_version=1, version=2, changed_switches=frozenset(["s2"])
        )
    )
    _, repaired = atom_pair(engine, snapshot_from(shrunk, version=2))
    cold = VerificationEngine(backend="atom", matrix_repair=False)
    _, rebuilt = atom_pair(cold, snapshot_from(shrunk, version=2))
    assert_matrices_equal(repaired, rebuilt, "after merge")


def test_repair_fraction_safety_valve():
    """repair_max_fraction=0 disables repair without disabling caching."""
    engine = VerificationEngine(backend="atom", repair_max_fraction=0.0)
    engine.compile(snapshot_from(BASE, version=1))
    engine.apply_delta(
        SnapshotDelta(
            since_version=1, version=2, changed_switches=frozenset(["s3"])
        )
    )
    engine.compile(snapshot_from(churn_s3(BASE), version=2))
    assert engine.metrics.matrix_repairs == 0
    assert engine.metrics.matrix_repair_fallbacks == 1
    assert engine.metrics.atom_matrix_builds == 2


def test_wiring_surgery_never_repairs():
    engine = VerificationEngine(backend="atom")
    engine.compile(snapshot_from(BASE, version=1))
    engine.apply_delta(
        SnapshotDelta(since_version=1, version=2, wiring_changed=True)
    )
    rewired = NetworkSnapshot(
        version=2,
        taken_at=0.0,
        rules={name: tuple(rules) for name, rules in BASE.items()},
        meters=(),
        wiring={("s1", 2): ("s3", 3), ("s3", 3): ("s1", 2)},
        edge_ports=EDGE_PORTS,
        switch_ports=SWITCH_PORTS,
    )
    engine.compile(rewired)
    assert engine.metrics.matrix_repairs == 0
    assert engine.metrics.atom_matrix_builds == 2


def test_port_change_delta_repairs():
    """A switch-port change (no rule churn) is repairable: only rows
    traversing the resized switch re-propagate."""
    base = {
        "s1": [],
        "s2": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(2),))],
        "s3": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(1),))],
    }
    engine = VerificationEngine(backend="atom")
    engine.compile(snapshot_from(base, version=1))
    ports = dict(SWITCH_PORTS)
    ports["s3"] = EXTENDED_PORTS
    engine.apply_delta(
        SnapshotDelta(
            since_version=1, version=2, changed_switches=frozenset(["s3"])
        )
    )
    _, repaired = atom_pair(engine, snapshot_with(base, ports, 2))
    assert engine.metrics.matrix_repairs == 1
    cold = VerificationEngine(backend="atom", matrix_repair=False)
    _, rebuilt = atom_pair(cold, snapshot_with(base, ports, 2))
    assert_matrices_equal(repaired, rebuilt, "after port change")


def test_remap_round_trips_registered_sets():
    """apply() translates exactly between a universe and its refinement."""
    from repro.hsa.wildcard import Wildcard

    old = GLOBAL_ATOM_TABLE.space_for([Wildcard.from_fields(tp_dst=80)])
    new = GLOBAL_ATOM_TABLE.space_for(
        [Wildcard.from_fields(tp_dst=80), Wildcard.from_fields(tp_dst=81)]
    )
    remap = AtomRemap(old, new)
    assert remap.splits >= 1
    for wc in (Wildcard.from_fields(tp_dst=80), Wildcard.all()):
        space = HeaderSpace.single(wc)
        old_bits = old.encode_space(space)
        assert remap.apply(old_bits) == new.encode_space(space)
        assert new.decode(remap.apply(old_bits)) == old.decode(old_bits)
    # The reverse direction (merge) is inexact for the set only the
    # finer universe can express.
    shrink = AtomRemap(new, old)
    fine = new.encode_space(
        HeaderSpace.single(Wildcard.from_fields(tp_dst=81))
    )
    with pytest.raises(RemapInexact):
        shrink.apply(fine)
    # ...but exact on sets both can express.
    coarse = new.encode_space(HeaderSpace.single(Wildcard.from_fields(tp_dst=80)))
    assert shrink.apply(coarse) == old.encode_space(
        HeaderSpace.single(Wildcard.from_fields(tp_dst=80))
    )


def test_atom_table_pins_live_spaces_across_eviction():
    """Satellite: LRU eviction must not split a universe two artifacts
    share.  A space referenced by a live matrix is revived — the *same*
    object — instead of being rebuilt as a bitset-incompatible twin."""
    import gc

    from repro.hsa.atoms import AtomTable
    from repro.hsa.wildcard import Wildcard

    table = AtomTable(max_entries=1)
    c1 = [Wildcard.from_fields(tp_dst=80)]
    c2 = [Wildcard.from_fields(tp_dst=81)]
    first = table.space_for(c1)
    assert first is not None and table.builds == 1
    second = table.space_for(c2)  # evicts first from the strong LRU
    assert second is not None and table.builds == 2
    # "first" is still referenced (as a matrix's space would be):
    revived = table.space_for(c1)
    assert revived is first
    assert table.builds == 2  # no rebuild
    assert table.revivals == 1
    # Once the last reference truly dies, a rebuild is correct again.
    del first, revived
    table.space_for(c2)  # push c1 out of the strong LRU once more
    gc.collect()
    rebuilt = table.space_for(c1)
    assert rebuilt is not None
    assert table.builds == 3


def test_per_query_class_breakdown():
    """Satellite: operators can see which classes the matrix serves."""
    verifier = LogicalVerifier(
        REGISTRATIONS, engine=VerificationEngine(backend="atom")
    )
    snapshot = snapshot_from(BASE)
    registration = REGISTRATIONS["alice"]
    verifier.reachable_destinations(registration, snapshot)
    verifier.path_length(registration, snapshot)
    metrics = verifier.engine.metrics
    assert metrics.atom_served_by_class.get("reachable_destinations", 0) >= 1
    assert metrics.atom_fallbacks_by_class.get("path_length", 0) >= 1
    served = sum(metrics.atom_served_by_class.values())
    fallbacks = sum(metrics.atom_fallbacks_by_class.values())
    assert served == metrics.atom_served_queries
    assert fallbacks == metrics.atom_fallbacks
