"""Tests for route compilation and the provider controller."""

import pytest

from repro.controlplane.provider import ProviderController
from repro.controlplane.routing import (
    compute_pair_route_plan,
    compute_route_plan,
    isolation_pairs,
    shortest_path_length,
)
from repro.dataplane.network import Network
from repro.dataplane.topologies import isp_topology, linear_topology


class TestRoutePlan:
    def test_rule_count_all_pairs(self):
        topo = linear_topology(3, hosts_per_switch=1)
        plan = compute_route_plan(topo)
        # one rule per (destination, switch) = 3 * 3.
        assert plan.rule_count() == 9

    def test_paths_recorded(self):
        topo = linear_topology(3, hosts_per_switch=1)
        plan = compute_route_plan(topo)
        assert plan.path_between("h1", "h3") == ("s1", "s2", "s3")
        assert plan.path_between("h3", "h1") == ("s3", "s2", "s1")

    def test_rules_for_switch(self):
        topo = linear_topology(2, hosts_per_switch=1)
        plan = compute_route_plan(topo)
        assert len(plan.rules_for("s1")) == 2

    def test_latency_weighted_choice(self):
        from repro.dataplane.topology import Topology

        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_switch(name)
        topo.add_host("h1", "a")
        topo.add_host("h2", "b")
        topo.add_link("a", "b", latency=0.100)  # slow direct
        topo.add_link("a", "c", latency=0.001)
        topo.add_link("c", "b", latency=0.001)  # fast detour
        plan = compute_route_plan(topo)
        assert plan.path_between("h1", "h2") == ("a", "c", "b")

    def test_shortest_path_length_helper(self):
        topo = linear_topology(4)
        assert shortest_path_length(topo, "s1", "s4") == 3


class TestPairPlan:
    def test_isolation_pairs_same_client_only(self):
        topo = isp_topology(clients=["alice", "bob"])
        pairs = isolation_pairs(topo)
        assert pairs
        assert all(src.client == dst.client for src, dst in pairs)

    def test_pair_rules_match_both_ips(self):
        topo = isp_topology(clients=["alice", "bob"])
        plan = compute_pair_route_plan(topo, isolation_pairs(topo))
        for rule in plan.rules:
            assert rule.match.ip_src is not None
            assert rule.match.ip_dst is not None

    def test_pair_plan_skips_self(self):
        topo = isp_topology(clients=["alice", "bob"])
        hosts = list(topo.hosts.values())
        plan = compute_pair_route_plan(topo, [(hosts[0], hosts[0])])
        assert plan.rule_count() == 0


class TestProviderDeployment:
    def test_flat_deploy_connects_everyone(self):
        topo = linear_topology(3, hosts_per_switch=1, clients=["a", "b"])
        net = Network(topo, seed=0)
        provider = ProviderController()
        provider.attach(net)
        provider.deploy()
        net.run_until_idle()
        net.host("h1").send_udp(net.host("h3").ip, 1, b"x")
        net.run_until_idle()
        assert len(net.host("h3").received) == 1

    def test_isolated_deploy_blocks_cross_client(self):
        topo = linear_topology(4, hosts_per_switch=1, clients=["a", "b"])
        # round robin: h1,h3 -> a; h2,h4 -> b
        net = Network(topo, seed=0)
        provider = ProviderController()
        provider.attach(net)
        provider.deploy(isolate_clients=True)
        net.run_until_idle()
        net.host("h1").send_udp(net.host("h3").ip, 1, b"same-client")
        net.host("h1").send_udp(net.host("h2").ip, 1, b"cross-client")
        net.run_until_idle()
        assert len(net.host("h3").received) == 1
        assert len(net.host("h2").received) == 0

    def test_isolated_deploy_blocks_spoofing(self):
        topo = linear_topology(4, hosts_per_switch=1, clients=["a", "b"])
        net = Network(topo, seed=0)
        provider = ProviderController()
        provider.attach(net)
        provider.deploy(isolate_clients=True)
        net.run_until_idle()
        # h2 (client b) spoofs h1's source address toward h3 (client a).
        spoofed = net.host("h2").send_udp(net.host("h3").ip, 1, b"spoof")
        # Direct injection with forged ip_src:
        forged = spoofed.replace(ip_src=net.host("h1").ip)
        net.host("h2").send_packet(forged)
        net.run_until_idle()
        assert net.host("h3").received == []

    def test_provider_reports_benign_plan(self):
        topo = linear_topology(3, hosts_per_switch=1, clients=["a"])
        net = Network(topo, seed=0)
        provider = ProviderController()
        provider.attach(net)
        provider.deploy()
        assert provider.report_path("h1", "h3") == ("s1", "s2", "s3")
        assert "h3" in provider.report_reachable_hosts("h1")

    def test_withdraw_all(self):
        topo = linear_topology(2, hosts_per_switch=1, clients=["a"])
        net = Network(topo, seed=0)
        provider = ProviderController()
        provider.attach(net)
        provider.deploy()
        net.run_until_idle()
        assert net.total_rules() > 0
        provider.withdraw_all()
        net.run_until_idle()
        assert net.total_rules() == 0

    def test_expected_rules_grouping(self):
        topo = linear_topology(2, hosts_per_switch=1, clients=["a"])
        net = Network(topo, seed=0)
        provider = ProviderController()
        provider.attach(net)
        provider.deploy()
        grouped = provider.expected_rules()
        assert set(grouped) == {"s1", "s2"}
