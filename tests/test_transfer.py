"""Unit tests for switch transfer functions (HSA compilation of rules)."""

import pytest

from repro.hsa.headerspace import HeaderSpace
from repro.hsa.transfer import (
    CONTROLLER_PORT,
    SnapshotRule,
    SwitchTransferFunction,
)
from repro.hsa.wildcard import Wildcard
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import (
    Drop,
    Flood,
    GotoTable,
    Meter,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from repro.openflow.match import Match


def rule(match, actions, priority=0, table_id=0):
    return SnapshotRule(
        table_id=table_id, priority=priority, match=match, actions=tuple(actions)
    )


def tf(rules, ports=(1, 2, 3)):
    return SwitchTransferFunction("s1", rules, ports=ports)


def space(**fields):
    if not fields:
        return HeaderSpace.all()
    return HeaderSpace.single(Wildcard.from_fields(**fields))


class TestBasicEmission:
    def test_empty_table_drops_all(self):
        assert tf([]).apply(1, HeaderSpace.all()) == []

    def test_single_rule_emits(self):
        emissions = tf([rule(Match.any(), (Output(2),))]).apply(1, space())
        assert len(emissions) == 1
        port, hs = emissions[0]
        assert port == 2 and not hs.is_empty()

    def test_match_restricts_space(self):
        emissions = tf([rule(Match.build(tp_dst=80), (Output(2),))]).apply(
            1, space()
        )
        _, hs = emissions[0]
        assert hs.contains_point(Wildcard.from_fields(tp_dst=80).value)
        assert not hs.contains_point(Wildcard.from_fields(tp_dst=81).value)

    def test_disjoint_space_no_emission(self):
        emissions = tf([rule(Match.build(tp_dst=80), (Output(2),))]).apply(
            1, space(tp_dst=443)
        )
        assert emissions == []

    def test_controller_port_emission(self):
        emissions = tf([rule(Match.any(), (ToController(),))]).apply(1, space())
        assert emissions[0][0] == CONTROLLER_PORT

    def test_flood_emits_to_all_but_ingress(self):
        emissions = tf([rule(Match.any(), (Flood(),))]).apply(2, space())
        assert sorted(port for port, _ in emissions) == [1, 3]

    def test_drop_action_emits_nothing(self):
        assert tf([rule(Match.any(), (Drop(),))]).apply(1, space()) == []

    def test_meter_is_transparent(self):
        emissions = tf([rule(Match.any(), (Meter(1), Output(2)))]).apply(1, space())
        assert [port for port, _ in emissions] == [2]


class TestPriorityShadowing:
    def test_high_priority_shadows_low(self):
        function = tf(
            [
                rule(Match.build(tp_dst=80), (Output(2),), priority=10),
                rule(Match.any(), (Output(3),), priority=1),
            ]
        )
        emissions = function.apply(1, space())
        by_port = {port: hs for port, hs in emissions}
        assert not by_port[2].is_empty()
        # Port 3 must NOT receive the tp_dst=80 slice.
        assert not by_port[3].contains_point(Wildcard.from_fields(tp_dst=80).value)
        assert by_port[3].contains_point(Wildcard.from_fields(tp_dst=81).value)

    def test_exact_partition_no_leak_no_loss(self):
        function = tf(
            [
                rule(Match.build(tp_dst=80), (Output(2),), priority=10),
                rule(Match.any(), (Output(3),), priority=1),
            ]
        )
        emissions = function.apply(1, space())
        union = HeaderSpace.empty()
        for _, hs in emissions:
            union = union.union(hs)
        assert HeaderSpace.all() == union  # nothing dropped

    def test_same_priority_deterministic(self):
        a = tf(
            [
                rule(Match.build(tp_dst=80), (Output(2),), priority=5),
                rule(Match.build(ip_proto=17), (Output(3),), priority=5),
            ]
        )
        emissions = a.apply(1, space(tp_dst=80, ip_proto=17))
        assert len(emissions) == 1  # only one rule wins


class TestInPortRules:
    def test_in_port_rule_only_applies_on_port(self):
        function = tf([rule(Match(in_port=1), (Output(2),))])
        assert function.apply(1, space()) != []
        assert function.apply(3, space()) == []

    def test_in_port_shadowing_is_port_local(self):
        function = tf(
            [
                rule(Match(in_port=1), (Drop(),), priority=10),
                rule(Match.any(), (Output(2),), priority=1),
            ]
        )
        # On port 1 the drop swallows everything.
        assert function.apply(1, space()) == []
        # On port 3 the drop rule does not apply at all.
        assert [p for p, _ in function.apply(3, space())] == [2]


class TestRewrites:
    def test_setfield_rewrites_emitted_space(self):
        function = tf(
            [rule(Match.any(), (SetField("ip_dst", IPv4Address(42)), Output(2)))]
        )
        _, hs = function.apply(1, space())[0]
        value, mask = hs.wildcards[0].field_constraint("ip_dst")
        assert value == 42 and mask == (1 << 32) - 1

    def test_vlan_push_pop(self):
        function = tf(
            [rule(Match(vlan_id=0), (PushVlan(99), Output(2)), priority=5)]
        )
        _, hs = function.apply(1, space(vlan_id=0))[0]
        assert hs.wildcards[0].field_constraint("vlan_id")[0] == 99
        popper = tf([rule(Match(vlan_id=99), (PopVlan(), Output(3)))])
        _, hs2 = popper.apply(1, hs)[0]
        assert hs2.wildcards[0].field_constraint("vlan_id")[0] == 0

    def test_rewrite_applies_only_to_matched_slice(self):
        function = tf(
            [
                rule(
                    Match.build(tp_dst=80),
                    (SetField("tp_dst", 8080), Output(2)),
                    priority=5,
                ),
                rule(Match.any(), (Output(3),), priority=1),
            ]
        )
        by_port = dict(function.apply(1, space()))
        assert by_port[2].wildcards[0].field_constraint("tp_dst")[0] == 8080
        assert by_port[3].contains_point(Wildcard.from_fields(tp_dst=81).value)


class TestMultiTable:
    def test_goto_composes_tables(self):
        function = tf(
            [
                rule(Match.any(), (GotoTable(1),), table_id=0),
                rule(Match.build(tp_dst=80), (Output(2),), table_id=1),
            ]
        )
        emissions = function.apply(1, space())
        assert [port for port, _ in emissions] == [2]
        assert emissions[0][1].wildcards[0].field_constraint("tp_dst")[0] == 80

    def test_goto_carries_rewrites(self):
        function = tf(
            [
                rule(Match.any(), (PushVlan(7), GotoTable(1)), table_id=0),
                rule(Match(vlan_id=7), (Output(2),), table_id=1),
            ]
        )
        assert [port for port, _ in function.apply(1, space(vlan_id=0))] == [2]

    def test_goto_table_miss_drops(self):
        function = tf([rule(Match.any(), (GotoTable(1),), table_id=0)])
        assert function.apply(1, space()) == []


class TestIntrospection:
    def test_rule_count_and_rules(self):
        function = tf(
            [
                rule(Match.any(), (Output(1),)),
                rule(Match.build(tp_dst=80), (Output(2),), table_id=1),
            ]
        )
        assert function.rule_count() == 2
        assert len(function.rules()) == 2


class TestKernelFastPath:
    """Classifier index, early exit, and pre-compiled action programs."""

    def test_early_exit_fires_on_catch_all(self):
        # A broad space hits a specific rule, then the priority-0
        # catch-all swallows the remainder: the subsumption early exit
        # must fire even though the mask-coverage pre-check sees pieces
        # with differing masks (the catch-all constrains no bits).
        t = tf(
            [
                rule(Match.build(ip_dst="10.0.0.1"), (Output(2),), priority=5),
                rule(Match(), (Output(3),), priority=0),
            ]
        )
        emissions = t.apply(1, HeaderSpace.all())
        assert {port for port, _ in emissions} == {2, 3}
        assert t.stats.early_exits >= 1

    def test_early_exit_fires_on_exact_subsuming_rule(self):
        # The remainder is narrow (one exact piece) and the first rule
        # subsumes it: the pre-check passes (rule mask ⊆ piece mask) and
        # the exit fires without scanning the rest of the table.
        t = tf(
            [
                rule(Match.build(ip_dst="10.0.0.1"), (Output(2),), priority=5),
                rule(Match.build(ip_dst="10.0.0.1"), (Output(3),), priority=1),
            ]
        )
        emissions = t.apply(1, space(ip_dst=IPv4Address.parse("10.0.0.1").value))
        assert [port for port, _ in emissions] == [2]
        assert t.stats.early_exits >= 1

    def test_classifier_skips_disjoint_rules(self):
        # Ten rules on distinct destinations: a space pinning ip_dst
        # must only be checked against its own bucket.
        rules = [
            rule(Match.build(ip_dst=f"10.0.0.{i}"), (Output(2),), priority=5)
            for i in range(1, 11)
        ]
        t = tf(rules)
        t.apply(1, space(ip_dst=IPv4Address.parse("10.0.0.7").value))
        assert t.stats.index_hits >= 1
        assert t.stats.rules_skipped >= 8
        # And the answer matches a full scan semantically.
        emissions = t.apply(1, space(ip_dst=IPv4Address.parse("10.0.0.7").value))
        assert [port for port, _ in emissions] == [2]

    def test_emissions_identical_with_and_without_index(self):
        rules = [
            rule(Match.build(ip_dst=f"10.0.0.{i}"), (Output(i),), priority=5)
            for i in range(1, 5)
        ] + [rule(Match(), (Output(9),), priority=0)]
        indexed = tf(rules, ports=tuple(range(1, 11)))
        probe = space(ip_dst=IPv4Address.parse("10.0.0.3").value)
        got = indexed.apply(1, probe)
        assert [(p, s.fingerprint()) for p, s in got] == [
            (3, probe.fingerprint()),
        ]


class TestCompiledActionPrograms:
    def test_compile_folds_sequential_rewrites(self):
        from repro.hsa.transfer import compile_actions

        ops = compile_actions(
            (SetField("tp_dst", 80), SetField("tp_dst", 81), Output(2))
        )
        assert ops is not None
        clear, bits, ports, goto = ops
        assert ports == (2,)
        assert goto is None
        # Last writer wins: applying to a free wildcard pins tp_dst=81.
        w = Wildcard.all()
        rewritten = Wildcard._make((w.value & ~clear) | bits, w.mask | clear)
        assert rewritten.field_constraint("tp_dst")[0] == 81

    def test_compile_rejects_flood_and_rewrite_after_emit(self):
        from repro.hsa.transfer import compile_actions

        assert compile_actions((Flood(),)) is None
        assert compile_actions((Output(1), SetField("tp_dst", 80))) is None

    def test_compile_goto_terminates_program(self):
        from repro.hsa.transfer import compile_actions

        ops = compile_actions((Output(1), GotoTable(1), Output(2)))
        assert ops == (0, 0, (1,), 1)

    def test_interpreted_and_compiled_paths_agree(self):
        # Flood forces the interpreter; an equivalent explicit output
        # list uses the compiled path.  Same rules otherwise — emitted
        # spaces must agree.
        flood_tf = tf(
            [rule(Match.build(ip_dst="10.0.0.1"), (Flood(),))], ports=(1, 2, 3)
        )
        explicit_tf = tf(
            [rule(Match.build(ip_dst="10.0.0.1"), (Output(2), Output(3)))],
            ports=(1, 2, 3),
        )
        probe = space(ip_dst=IPv4Address.parse("10.0.0.1").value)
        flood_out = sorted(
            (p, s.fingerprint()) for p, s in flood_tf.apply(1, probe)
        )
        explicit_out = sorted(
            (p, s.fingerprint()) for p, s in explicit_tf.apply(1, probe)
        )
        assert flood_out == explicit_out
