"""Integration tests for the network emulator with real routing."""

import pytest

from repro.controlplane.provider import ProviderController
from repro.dataplane.network import Network
from repro.dataplane.topologies import linear_topology, single_switch_topology


@pytest.fixture()
def routed_linear():
    topo = linear_topology(3, hosts_per_switch=1, clients=["c"])
    net = Network(topo, seed=0)
    provider = ProviderController()
    provider.attach(net)
    provider.deploy()
    net.run_until_idle()
    return net, provider


class TestDelivery:
    def test_end_to_end_udp(self, routed_linear):
        net, _ = routed_linear
        src, dst = net.host("h1"), net.host("h3")
        src.send_udp(dst.ip, 4242, b"payload")
        net.run_until_idle()
        assert len(dst.received) == 1
        assert dst.received[0].payload == b"payload"

    def test_trace_follows_chain(self, routed_linear):
        net, _ = routed_linear
        src, dst = net.host("h1"), net.host("h3")
        src.send_udp(dst.ip, 4242, b"x")
        net.run_until_idle()
        assert [s for s, _ in dst.received[0].trace] == ["s1", "s2", "s3"]

    def test_same_switch_delivery(self):
        topo = single_switch_topology(2, clients=["c"])
        net = Network(topo, seed=0)
        provider = ProviderController()
        provider.attach(net)
        provider.deploy()
        net.run_until_idle()
        net.host("h1").send_udp(net.host("h2").ip, 1, b"hi")
        net.run_until_idle()
        assert len(net.host("h2").received) == 1

    def test_latency_accumulates(self, routed_linear):
        net, _ = routed_linear
        src, dst = net.host("h1"), net.host("h3")
        start = net.sim.now
        src.send_udp(dst.ip, 4242, b"x")
        net.run_until_idle()
        # two inter-switch links at 1 ms plus two host links at 0.2 ms.
        assert net.sim.now - start >= 0.0024

    def test_udp_handler_dispatch(self, routed_linear):
        net, _ = routed_linear
        got = []
        net.host("h3").register_udp_handler(555, got.append)
        net.host("h1").send_udp(net.host("h3").ip, 555, b"a")
        net.host("h1").send_udp(net.host("h3").ip, 556, b"b")
        net.run_until_idle()
        assert len(got) == 1 and got[0].payload == b"a"

    def test_received_on_filter(self, routed_linear):
        net, _ = routed_linear
        net.host("h1").send_udp(net.host("h3").ip, 555, b"a")
        net.run_until_idle()
        assert len(net.host("h3").received_on(555)) == 1
        assert net.host("h3").received_on(556) == []


class TestLinkState:
    def test_downed_link_stops_traffic(self, routed_linear):
        net, _ = routed_linear
        net.set_link_state("s1", "s2", up=False)
        net.run_until_idle()
        net.host("h1").send_udp(net.host("h3").ip, 1, b"x")
        net.run_until_idle()
        assert net.host("h3").received == []

    def test_link_state_emits_port_status(self, routed_linear):
        net, provider = routed_linear
        net.set_link_state("s1", "s2", up=False)
        net.run_until_idle()
        assert any(status == "down" for _, _, _, status in provider.port_events)

    def test_unknown_link_rejected(self, routed_linear):
        net, _ = routed_linear
        with pytest.raises(ValueError):
            net.set_link_state("s1", "s3", up=False)


class TestAccounting:
    def test_link_counters(self, routed_linear):
        net, _ = routed_linear
        net.host("h1").send_udp(net.host("h3").ip, 1, b"x")
        net.run_until_idle()
        link = net.link_at("s1", net.topology.links[0].port_a)
        assert link.packets_carried == 1

    def test_packets_delivered_counter(self, routed_linear):
        net, _ = routed_linear
        net.host("h1").send_udp(net.host("h3").ip, 1, b"x")
        net.run_until_idle()
        assert net.packets_delivered == 1

    def test_total_rules(self, routed_linear):
        net, _ = routed_linear
        # 3 destinations x 3 switches = 9 routing rules.
        assert net.total_rules() == 9

    def test_determinism_across_runs(self):
        def run():
            topo = linear_topology(3, hosts_per_switch=1, clients=["c"])
            net = Network(topo, seed=5)
            provider = ProviderController()
            provider.attach(net)
            provider.deploy()
            net.run_until_idle()
            net.host("h1").send_udp(net.host("h3").ip, 1, b"x")
            net.run_until_idle()
            return net.sim.now, net.sim.events_executed

        assert run() == run()
