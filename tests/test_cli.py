"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, QUERIES, main, parse_topology


class TestParsing:
    def test_parse_topology_specs(self):
        assert len(parse_topology("isp", ["a"]).switches) == 5
        assert len(parse_topology("linear:6", ["a"]).switches) == 6
        assert len(parse_topology("fat-tree:4", ["a"]).switches) == 20
        assert len(parse_topology("ring:5", ["a"]).switches) == 5
        assert len(parse_topology("single:3", ["a"]).hosts) == 3

    def test_parse_topology_defaults(self):
        assert len(parse_topology("linear", ["a"]).switches) == 4

    def test_unknown_topology_exits(self):
        with pytest.raises(SystemExit):
            parse_topology("torus:3", ["a"])

    def test_query_registry_complete(self):
        assert {"isolation", "geo", "bandwidth", "fairness"} <= set(QUERIES)
        for factory in QUERIES.values():
            factory()  # constructible

    def test_experiment_index_shape(self):
        assert len(EXPERIMENTS) == 23
        assert all(exp[0].startswith("E") for exp in EXPERIMENTS)
        assert any(exp[0] == "E23" for exp in EXPERIMENTS)


class TestCommands:
    def test_topologies_command(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "fat-tree" in out and "isp" in out

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E7" in out and "bench_baseline_comparison.py" in out

    def test_demo_command(self, capsys):
        assert main(["demo", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "isolated=True" in out
        assert "isolated=False" in out
        assert "covert access point" in out

    def test_query_command_benign(self, capsys):
        assert main(["query", "geo", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "GeoLocationQuery" in out
        assert "offshore" not in out.split("answer")[-1]

    def test_query_command_with_attack(self, capsys):
        assert (
            main(["query", "isolation", "--attack", "join", "--seed", "1"]) == 0
        )
        out = capsys.readouterr().out
        assert "isolated=False" in out

    def test_query_unknown_query_exits(self):
        with pytest.raises(SystemExit):
            main(["query", "frobnicate"])

    def test_query_unknown_attack_exits(self):
        with pytest.raises(SystemExit):
            main(["query", "geo", "--attack", "ddos"])

    def test_stats_command_reports_repairs(self, capsys):
        assert (
            main(
                [
                    "stats",
                    "--topology",
                    "linear:3",
                    "--churn",
                    "1",
                    "--seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "atom matrix" in out
        assert "repairs=1" in out
        assert "per query class" in out
        assert "reachable_destinations" in out

    def test_stats_command_gate_counters(self, capsys):
        assert (
            main(
                [
                    "stats",
                    "--topology",
                    "linear:3",
                    "--churn",
                    "1",
                    "--gate",
                    "--seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "gate               : state=active" in out
        assert "gate refusals" in out
        assert "gate ledger" in out
        # The churn FlowMod crossed the gate and got a verdict.
        assert "intercepted=" in out and "intercepted=0" not in out

    def test_stats_command_without_gate_is_silent(self, capsys):
        assert main(["stats", "--topology", "linear:3"]) == 0
        out = capsys.readouterr().out
        assert "gate " not in out

    def test_stats_command_wildcard_backend(self, capsys):
        assert (
            main(["stats", "--backend", "wildcard", "--topology", "linear:3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "backend" in out and "wildcard" in out
        assert "atom matrix" not in out
