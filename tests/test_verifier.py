"""Tests for the logical verifier: every query class, benign and attacked.

These tests answer queries *locally* (no in-band round) so they isolate
the HSA-based logic; the full protocol path is covered in
``test_service_e2e.py``.
"""

import pytest

from repro.attacks import (
    BlackholeAttack,
    DiversionAttack,
    ExfiltrationAttack,
    GeoViolationAttack,
    JoinAttack,
)
from repro.core.queries import (
    FairnessQuery,
    GeoLocationQuery,
    IsolationQuery,
    PathLengthQuery,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    TrafficScope,
    TransferFunctionQuery,
    WaypointAvoidanceQuery,
)
from repro.core.verifier import CONTROL_PLANE_ENDPOINT
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


def settle(bed, duration=0.3):
    bed.run(duration)


class TestReachableDestinations:
    def test_benign_only_own_hosts(self, bed):
        answer = bed.service.answer_locally(
            "alice", ReachableDestinationsQuery(authenticate=False)
        )
        assert {e.host for e in answer.endpoints} == {"h_ber1", "h_fra1", "h_par1"}
        assert all(e.client == "alice" for e in answer.endpoints)

    def test_exfiltration_adds_destination(self, bed):
        bed.provider.compromise(ExfiltrationAttack("h_fra1", "h_ams1"))
        settle(bed)
        answer = bed.service.answer_locally(
            "alice", ReachableDestinationsQuery(authenticate=False)
        )
        assert "h_ams1" in {e.host for e in answer.endpoints}

    def test_scope_narrows_analysis(self, bed):
        answer = bed.service.answer_locally(
            "alice",
            ReachableDestinationsQuery(
                authenticate=False, scope=TrafficScope(tp_dst=9999, ip_proto=17)
            ),
        )
        # Pair routing matches all ports, so scope does not change the
        # endpoint set here — but it must not crash or widen it.
        assert {e.client for e in answer.endpoints} <= {"alice"}

    def test_control_plane_copy_detected(self, bed):
        """A malicious punt rule shows up as the control-plane endpoint."""
        from repro.openflow.actions import ToController
        from repro.openflow.match import Match

        alice_ip = bed.registrations["alice"].hosts[0].ip
        from repro.netlib.addresses import IPv4Address

        bed.provider.install_flow(
            "ber",
            Match(ip_src=IPv4Address(alice_ip)),
            (ToController(),),
            priority=30,
        )
        settle(bed)
        answer = bed.service.answer_locally(
            "alice", ReachableDestinationsQuery(authenticate=False)
        )
        assert CONTROL_PLANE_ENDPOINT in answer.endpoints


class TestReachingSources:
    def test_benign(self, bed):
        answer = bed.service.answer_locally("alice", ReachingSourcesQuery())
        assert {e.host for e in answer.endpoints} == {"h_ber1", "h_fra1", "h_par1"}

    def test_join_attack_adds_source(self, bed):
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        settle(bed)
        answer = bed.service.answer_locally("alice", ReachingSourcesQuery())
        assert "h_ber2" in {e.host for e in answer.endpoints}


class TestIsolation:
    def test_benign_isolated(self, bed):
        answer = bed.service.answer_locally("alice", IsolationQuery())
        assert answer.isolated
        assert answer.violating_endpoints == ()
        assert len(answer.declared_endpoints) == 3

    def test_join_attack_detected_inbound(self, bed):
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        settle(bed)
        answer = bed.service.answer_locally("alice", IsolationQuery())
        assert not answer.isolated
        assert {e.host for e in answer.violating_endpoints} == {"h_ber2"}

    def test_exfiltration_detected_outbound(self, bed):
        bed.provider.compromise(ExfiltrationAttack("h_fra1", "h_off1"))
        settle(bed)
        answer = bed.service.answer_locally("alice", IsolationQuery())
        assert not answer.isolated
        assert "h_off1" in {e.host for e in answer.violating_endpoints}

    def test_attack_visible_from_both_tenants(self, bed):
        """A covert channel violates *both* clients' isolation: alice
        gains an unexpected source, bob an unexpected destination."""
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        settle(bed)
        bob = bed.service.answer_locally("bob", IsolationQuery())
        assert not bob.isolated
        assert "h_fra1" in {e.host for e in bob.violating_endpoints}

    def test_other_client_unaffected_by_internal_attack(self, bed):
        """An attack entirely inside alice's tenancy leaves bob isolated."""
        bed.provider.compromise(BlackholeAttack("h_ber1", "h_fra1"))
        settle(bed)
        assert bed.service.answer_locally("bob", IsolationQuery()).isolated

    def test_attack_cleanup_restores_isolation(self, bed):
        attack = JoinAttack("h_ber2", "h_fra1")
        bed.provider.compromise(attack)
        settle(bed)
        assert not bed.service.answer_locally("alice", IsolationQuery()).isolated
        bed.provider.retreat(attack)
        settle(bed)
        assert bed.service.answer_locally("alice", IsolationQuery()).isolated


class TestGeo:
    def test_benign_regions(self, bed):
        answer = bed.service.answer_locally("alice", GeoLocationQuery())
        assert set(answer.regions) == {"de-berlin", "de-frankfurt", "fr-paris"}

    def test_geo_attack_adds_region(self, bed):
        bed.provider.compromise(GeoViolationAttack("h_ber1", "h_fra1", "offshore"))
        settle(bed)
        answer = bed.service.answer_locally("alice", GeoLocationQuery())
        assert "offshore" in answer.regions

    def test_waypoint_avoidance(self, bed):
        ok = bed.service.answer_locally(
            "alice", WaypointAvoidanceQuery(forbidden_regions=("offshore",))
        )
        assert ok.avoided
        bed.provider.compromise(GeoViolationAttack("h_ber1", "h_fra1", "offshore"))
        settle(bed)
        bad = bed.service.answer_locally(
            "alice", WaypointAvoidanceQuery(forbidden_regions=("offshore",))
        )
        assert not bad.avoided and bad.violating_regions == ("offshore",)


class TestPathLength:
    def test_benign_routes_optimal(self, bed):
        answer = bed.service.answer_locally("alice", PathLengthQuery())
        assert answer.reports
        assert answer.optimal
        assert answer.max_stretch == 1.0

    def test_diversion_increases_stretch(self, bed):
        bed.provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        settle(bed)
        answer = bed.service.answer_locally("alice", PathLengthQuery())
        assert not answer.optimal
        assert answer.max_stretch > 1.0

    def test_destination_filter(self, bed):
        answer = bed.service.answer_locally(
            "alice", PathLengthQuery(destination_host="h_fra1")
        )
        assert {r.destination.host for r in answer.reports} == {"h_fra1"}


class TestFairness:
    def test_no_meters_is_neutral(self, bed):
        answer = bed.service.answer_locally("alice", FairnessQuery())
        assert answer.neutral
        assert answer.meters_on_my_traffic == ()

    def test_discriminatory_meter_detected(self, bed):
        from repro.netlib.addresses import IPv4Address
        from repro.openflow.actions import Meter, Output
        from repro.openflow.match import Match
        from repro.openflow.meters import MeterBand

        alice_ip = IPv4Address(bed.registrations["alice"].hosts[0].ip)
        bed.provider.install_meter("ber", 1, MeterBand(rate_kbps=100))
        bed.provider.install_flow(
            "ber",
            Match(ip_src=alice_ip),
            (Meter(1), Output(3)),
            priority=25,
        )
        settle(bed)
        bed.service.monitor.poll_all()  # meter state arrives with polls
        settle(bed)
        answer = bed.service.answer_locally("alice", FairnessQuery())
        assert not answer.neutral
        assert answer.meters_on_my_traffic
        assert answer.meters_on_my_traffic[0].rate_kbps == 100

    def test_uniform_meters_are_neutral(self, bed):
        from repro.openflow.actions import Meter, Output
        from repro.openflow.match import Match
        from repro.openflow.meters import MeterBand

        bed.provider.install_meter("ber", 1, MeterBand(rate_kbps=100))
        # Meter applies to everything equally (match-all rule).
        bed.provider.install_flow(
            "ber", Match.any(), (Meter(1), Output(3)), priority=25
        )
        settle(bed)
        answer = bed.service.answer_locally("alice", FairnessQuery())
        # The match-all rule overlaps alice AND everyone else: both
        # sides see the same floor, so the check reports neutral.
        assert answer.baseline_rate_kbps is None or answer.neutral


class TestTransferFunction:
    def test_entries_per_ingress_egress(self, bed):
        answer = bed.service.answer_locally("alice", TransferFunctionQuery())
        ingresses = {e.ingress.host for e in answer.entries}
        egresses = {e.egress.host for e in answer.entries}
        assert ingresses == {"h_ber1", "h_fra1", "h_par1"}
        assert egresses == {"h_ber1", "h_fra1", "h_par1"}

    def test_no_internal_paths_leaked(self, bed):
        """Confidentiality: answers name endpoints, never transit switches."""
        answer = bed.service.answer_locally("alice", TransferFunctionQuery())
        for entry in answer.entries:
            # ams/off are transit-only for alice; they must not appear.
            assert entry.ingress.switch not in ("ams", "off")
            assert entry.egress.switch not in ("ams", "off")


class TestAuthTargets:
    def test_targets_are_reachable_edges(self, bed):
        registration = bed.registrations["alice"]
        targets = bed.service.verifier.auth_targets(
            registration, bed.service.snapshot()
        )
        assert set(targets) == registration.access_points
