"""Unit tests for the OpenFlow switch model (pipeline + control handling)."""

import pytest

from repro.dataplane.network import Network
from repro.dataplane.simulator import Simulator
from repro.dataplane.topologies import single_switch_topology
from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.packet import Packet
from repro.openflow.actions import (
    Drop,
    Flood,
    GotoTable,
    Meter,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from repro.openflow.flowtable import FlowEntry
from repro.openflow.match import Match
from repro.openflow.messages import (
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowMonitorRequest,
    FlowStatsRequest,
    MeterMod,
    PacketOut,
)
from repro.openflow.meters import MeterBand
from repro.openflow.switch import OpenFlowSwitch


def make_switch(n_ports=3, n_tables=2):
    switch = OpenFlowSwitch("s1", dpid=1, n_tables=n_tables)
    for port in range(1, n_ports + 1):
        switch.add_port(port, kind="host" if port == 1 else "link")
    sent = []
    switch.transmit = lambda sw, port, pkt: sent.append((port, pkt))
    return switch, sent


def packet(**overrides):
    base = dict(
        eth_src=MacAddress.from_host_index(1),
        eth_dst=MacAddress.from_host_index(2),
        ip_src=IPv4Address.parse("10.0.0.1"),
        ip_dst=IPv4Address.parse("10.0.0.2"),
        tp_src=1,
        tp_dst=2,
    )
    base.update(overrides)
    return Packet(**base)


def install(switch, match, actions, priority=0, table_id=0, **kwargs):
    switch.tables[table_id].add(
        FlowEntry(match=match, actions=tuple(actions), priority=priority, **kwargs)
    )


class TestPipeline:
    def test_table_miss_drops(self):
        switch, sent = make_switch()
        switch.receive_packet(packet(), 1)
        assert sent == []
        assert switch.packets_dropped == 1

    def test_output_forwards(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (Output(2),))
        switch.receive_packet(packet(), 1)
        assert [port for port, _ in sent] == [2]
        assert switch.packets_forwarded == 1

    def test_multiple_outputs_duplicate(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (Output(2), Output(3)))
        switch.receive_packet(packet(), 1)
        assert sorted(port for port, _ in sent) == [2, 3]

    def test_hairpin_output_allowed(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (Output(1),))
        switch.receive_packet(packet(), 1)
        assert [port for port, _ in sent] == [1]

    def test_flood_excludes_ingress(self):
        switch, sent = make_switch(n_ports=4)
        install(switch, Match.any(), (Flood(),))
        switch.receive_packet(packet(), 2)
        assert sorted(port for port, _ in sent) == [1, 3, 4]

    def test_setfield_rewrites_before_output(self):
        switch, sent = make_switch()
        install(
            switch,
            Match.any(),
            (SetField("ip_dst", IPv4Address.parse("10.9.9.9")), Output(2)),
        )
        switch.receive_packet(packet(), 1)
        assert sent[0][1].ip_dst == IPv4Address.parse("10.9.9.9")

    def test_vlan_push_and_pop(self):
        switch, sent = make_switch()
        install(switch, Match(vlan_id=0), (PushVlan(42), Output(2)))
        install(switch, Match(vlan_id=42), (PopVlan(), Output(3)), priority=5)
        switch.receive_packet(packet(), 1)
        tagged = sent[0][1]
        assert tagged.vlan_id == 42
        switch.receive_packet(tagged, 2)
        assert sent[1][1].vlan_id == 0

    def test_goto_table_continues_matching(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (GotoTable(1),), table_id=0)
        install(switch, Match.any(), (Output(3),), table_id=1)
        switch.receive_packet(packet(), 1)
        assert [port for port, _ in sent] == [3]

    def test_goto_table_miss_in_later_table_drops(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (GotoTable(1),), table_id=0)
        switch.receive_packet(packet(), 1)
        assert sent == []

    def test_drop_action(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (Drop(),))
        switch.receive_packet(packet(), 1)
        assert sent == []

    def test_priority_shadowing(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (Output(2),), priority=1)
        install(switch, Match.build(tp_dst=2), (Output(3),), priority=10)
        switch.receive_packet(packet(), 1)
        assert [port for port, _ in sent] == [3]

    def test_down_port_drops_output(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (Output(2),))
        switch.ports[2].up = False
        switch.receive_packet(packet(), 1)
        assert sent == []

    def test_down_ingress_ignores_packet(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (Output(2),))
        switch.ports[1].up = False
        switch.receive_packet(packet(), 1)
        assert sent == []

    def test_unknown_ingress_port_raises(self):
        switch, _sent = make_switch()
        with pytest.raises(ValueError):
            switch.receive_packet(packet(), 99)

    def test_trace_records_hop(self):
        switch, sent = make_switch()
        install(switch, Match.any(), (Output(2),))
        switch.receive_packet(packet(), 1)
        assert sent[0][1].trace == (("s1", 1),)

    def test_meter_drops_oversized_but_passes_small(self):
        switch, sent = make_switch()
        switch.meters.add(7, MeterBand(rate_kbps=1, burst_kb=1))
        install(switch, Match.any(), (Meter(7), Output(2)))
        big = packet(payload=b"x" * 2000)
        switch.receive_packet(big, 1)  # exceeds the 1 kB burst -> dropped
        assert sent == []
        # Dropped packets are not charged, so a small packet still fits.
        switch.receive_packet(packet(), 1)
        assert [port for port, _ in sent] == [2]

    def test_port_counters(self):
        switch, _sent = make_switch()
        install(switch, Match.any(), (Output(2),))
        switch.receive_packet(packet(), 1)
        assert switch.ports[1].rx_packets == 1
        assert switch.ports[2].tx_packets == 1


class TestControlHandling:
    """Exercise FlowMod/PacketOut/etc. through a real secure channel."""

    @pytest.fixture()
    def rig(self):
        topo = single_switch_topology(2, clients=["c"])
        net = Network(topo, seed=0)
        channel = net.open_control_channel("ctl", "s1")
        inbox = []
        channel.controller_end.set_handler(inbox.append)
        return net, net.switch("s1"), channel, inbox

    def test_flow_mod_add(self, rig):
        net, switch, channel, _ = rig
        channel.send_to_switch(
            FlowMod(match=Match.any(), actions=(Output(1),), priority=4)
        )
        net.run_until_idle()
        assert switch.rule_count() == 1

    def test_flow_mod_modify_changes_actions(self, rig):
        net, switch, channel, _ = rig
        channel.send_to_switch(FlowMod(match=Match.any(), actions=(Output(1),), priority=4))
        channel.send_to_switch(
            FlowMod(
                command=FlowModCommand.MODIFY,
                match=Match.any(),
                actions=(Output(2),),
                priority=4,
            )
        )
        net.run_until_idle()
        entries = list(switch.tables[0].entries())
        assert len(entries) == 1 and entries[0].actions == (Output(2),)

    def test_flow_mod_modify_missing_adds(self, rig):
        net, switch, channel, _ = rig
        channel.send_to_switch(
            FlowMod(
                command=FlowModCommand.MODIFY,
                match=Match.build(tp_dst=80),
                actions=(Output(2),),
                priority=4,
            )
        )
        net.run_until_idle()
        assert switch.rule_count() == 1

    def test_flow_mod_delete(self, rig):
        net, switch, channel, _ = rig
        channel.send_to_switch(FlowMod(match=Match.build(tp_dst=80), actions=(Output(1),)))
        channel.send_to_switch(
            FlowMod(command=FlowModCommand.DELETE, match=Match.any())
        )
        net.run_until_idle()
        assert switch.rule_count() == 0

    def test_packet_out_injects(self, rig):
        net, switch, channel, _ = rig
        host = net.host("h1")
        channel.send_to_switch(
            PacketOut(
                packet=packet(ip_dst=host.ip, tp_dst=7),
                actions=(Output(host.spec.port),),
            )
        )
        net.run_until_idle()
        assert len(host.received) == 1

    def test_features_reply(self, rig):
        net, switch, channel, inbox = rig
        channel.send_to_switch(FeaturesRequest())
        net.run_until_idle()
        reply = inbox[-1]
        assert reply.dpid == 1 and len(reply.ports) == 2

    def test_flow_stats_dump(self, rig):
        net, switch, channel, inbox = rig
        channel.send_to_switch(FlowMod(match=Match.build(tp_dst=80), actions=(Output(1),), priority=3))
        channel.send_to_switch(FlowStatsRequest())
        net.run_until_idle()
        stats = inbox[-1]
        assert len(stats.entries) == 1
        assert stats.entries[0].priority == 3

    def test_monitor_updates_emitted(self, rig):
        net, switch, channel, inbox = rig
        channel.send_to_switch(FlowMonitorRequest())
        channel.send_to_switch(FlowMod(match=Match.any(), actions=(Output(1),)))
        net.run_until_idle()
        from repro.openflow.messages import FlowMonitorUpdate

        updates = [m for m in inbox if isinstance(m, FlowMonitorUpdate)]
        assert len(updates) == 1 and updates[0].event == "added"

    def test_meter_mod(self, rig):
        net, switch, channel, _ = rig
        channel.send_to_switch(
            MeterMod(meter_id=4, band=MeterBand(rate_kbps=500))
        )
        net.run_until_idle()
        assert switch.meters.get(4) is not None

    def test_packet_in_goes_to_all_controllers(self, rig):
        net, switch, channel, inbox = rig
        second = net.open_control_channel("ctl2", "s1")
        inbox2 = []
        second.controller_end.set_handler(inbox2.append)
        channel.send_to_switch(
            FlowMod(match=Match.any(), actions=(ToController(),))
        )
        net.run_until_idle()
        net.host("h1").send_udp(net.host("h2").ip, 9, b"probe")
        net.run_until_idle()
        from repro.openflow.messages import PacketIn

        assert any(isinstance(m, PacketIn) for m in inbox)
        assert any(isinstance(m, PacketIn) for m in inbox2)

    def test_port_status_notification(self, rig):
        net, switch, channel, inbox = rig
        switch.notify_port_status(1, "down")
        net.run_until_idle()
        from repro.openflow.messages import PortStatus

        status = [m for m in inbox if isinstance(m, PortStatus)]
        assert status and status[0].status == "down"

    def test_configuration_signature_changes_with_rules(self, rig):
        net, switch, channel, _ = rig
        before = switch.configuration_signature()
        channel.send_to_switch(FlowMod(match=Match.any(), actions=(Output(1),)))
        net.run_until_idle()
        assert switch.configuration_signature() != before
