"""Integration: every example script must run clean, end to end.

Examples are documentation that executes; letting them rot defeats their
purpose.  Each is run in a subprocess with a generous timeout and must
exit 0 without tracebacks.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Traceback" not in result.stderr


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "isolation_case_study",
        "geo_location_case_study",
        "compromised_controller_tour",
        "multi_provider_federation",
        "forensics_and_replication",
        "proactive_alerts",
        "serving_demo",
    } <= names
