"""Resilience tests: poll retries, channel health, degraded answers.

Covers the ISSUE 3 satellites: the clamped inter-poll delay, the
generation token preventing double polling loops after stop/start, the
per-client isolation of the invariant-watch loop, auth-round
re-challenges, quorum behaviour with unavailable replicas, and the
health state machine feeding staleness-aware answers.
"""

import random
import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane.controller import ControllerApp
from repro.controlplane.provider import ProviderController
from repro.core.health import ChannelHealthTracker, ChannelState
from repro.core.monitor import ConfigurationMonitor, MonitorMode
from repro.core.queries import IsolationQuery
from repro.core.replication import QuorumError, ReplicatedRVaaS
from repro.dataplane.network import Network
from repro.dataplane.topologies import linear_topology
from repro.faults import FaultPlan, ground_truth_snapshot, mirror_synced
from repro.openflow.match import Match
from repro.testbed import build_testbed


def build(mode=MonitorMode.ACTIVE, mean_poll=1.0, randomize=False, seed=0, **kw):
    topo = linear_topology(3, hosts_per_switch=1, clients=["c"])
    net = Network(topo, seed=seed)
    provider = ProviderController()
    provider.attach(net)
    provider.deploy()
    watcher = ControllerApp("watcher")
    watcher.attach(net)
    monitor = ConfigurationMonitor(
        watcher,
        topo,
        mode=mode,
        mean_poll_interval=mean_poll,
        randomize_polls=randomize,
        **kw,
    )
    watcher.on_monitor_update = monitor.handle_monitor_update  # type: ignore[assignment]
    monitor.start()
    net.run(0.5)
    return topo, net, provider, watcher, monitor


def drop_replies(direction, latency):
    """A fault filter that loses every switch->controller record."""
    return () if direction == "to_controller" else (latency,)


# ----------------------------------------------------------------------
# Health state machine
# ----------------------------------------------------------------------


class TestChannelHealth:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            ChannelHealthTracker(degraded_after=0)
        with pytest.raises(ValueError):
            ChannelHealthTracker(degraded_after=3, lost_after=3)

    def test_demotion_ladder(self):
        tracker = ChannelHealthTracker(degraded_after=1, lost_after=3)
        assert tracker.state("s1") is ChannelState.HEALTHY
        assert tracker.record_timeout("s1", 1.0) == "degraded"
        assert tracker.state("s1") is ChannelState.DEGRADED
        assert tracker.record_timeout("s1", 2.0) is None
        assert tracker.record_timeout("s1", 3.0) == "lost"
        assert tracker.state("s1") is ChannelState.LOST
        assert tracker.lost() == ("s1",)

    def test_recovery_from_degraded_is_not_a_reconnect(self):
        tracker = ChannelHealthTracker()
        tracker.record_timeout("s1", 1.0)
        assert tracker.record_success("s1", 2.0) == "recovered"

    def test_recovery_from_lost_is_a_reconnect(self):
        tracker = ChannelHealthTracker()
        for t in (1.0, 2.0, 3.0):
            tracker.record_timeout("s1", t)
        assert tracker.record_success("s1", 4.0) == "reconnected"
        assert tracker.all_healthy()
        kinds = [(t.from_state, t.to_state) for t in tracker.transitions]
        assert kinds == [
            (ChannelState.HEALTHY, ChannelState.DEGRADED),
            (ChannelState.DEGRADED, ChannelState.LOST),
            (ChannelState.LOST, ChannelState.HEALTHY),
        ]

    def test_success_resets_the_timeout_streak(self):
        tracker = ChannelHealthTracker(lost_after=3)
        tracker.record_timeout("s1", 1.0)
        tracker.record_timeout("s1", 2.0)
        tracker.record_success("s1", 3.0)
        tracker.record_timeout("s1", 4.0)
        assert tracker.state("s1") is ChannelState.DEGRADED  # not LOST

    def test_staleness(self):
        tracker = ChannelHealthTracker()
        assert tracker.staleness("never-seen", 10.0) == float("inf")
        tracker.record_success("s1", 4.0)
        assert tracker.staleness("s1", 10.0) == pytest.approx(6.0)

    def test_rapid_flapping_yields_one_reconnect_per_loss_episode(self):
        """A flapping channel must not amplify into a resync storm: the
        tracker reports "reconnected" exactly once per LOST episode, and
        steady successes after recovery report nothing at all."""
        tracker = ChannelHealthTracker(degraded_after=1, lost_after=3)
        events = []
        now = 0.0
        for _flap in range(5):
            for _ in range(3):
                now += 0.1
                events.append(tracker.record_timeout("s1", now))
            for _ in range(4):  # several confirmations in a row
                now += 0.1
                events.append(tracker.record_success("s1", now))
        assert events.count("reconnected") == 5  # one per episode
        assert events.count("recovered") == 0  # never double-reported
        kinds = [(t.from_state, t.to_state) for t in tracker.transitions]
        assert len(kinds) == 15  # 5 x (DEGRADED, LOST, HEALTHY): no dupes
        assert tracker.all_healthy()

    def test_staleness_monotone_between_confirmations(self):
        tracker = ChannelHealthTracker(degraded_after=1, lost_after=2)
        tracker.record_success("s1", 1.0)
        samples = []
        now = 1.0
        for _ in range(4):
            now += 0.5
            tracker.record_timeout("s1", now)
            samples.append(tracker.staleness("s1", now))
        # Timeouts and state demotions never refresh the confirmation
        # clock: staleness grows strictly until a real success.
        assert samples == sorted(samples) and samples[0] > 0.0
        tracker.record_success("s1", now + 0.5)
        assert tracker.staleness("s1", now + 0.5) == 0.0


# ----------------------------------------------------------------------
# Poll-delay clamping (satellite: bounded blind windows)
# ----------------------------------------------------------------------


def stub_monitor(mean, seed, **kw):
    """A monitor with just enough context to draw poll delays."""
    sim = types.SimpleNamespace(rng=random.Random(seed))
    controller = types.SimpleNamespace(
        network=types.SimpleNamespace(sim=sim), channels={}
    )
    return ConfigurationMonitor(
        controller, None, mode=MonitorMode.ACTIVE, mean_poll_interval=mean, **kw
    )


class TestPollDelayClamp:
    @settings(max_examples=50, deadline=None)
    @given(
        mean=st.floats(min_value=0.01, max_value=100.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_delay_always_within_bounds(self, mean, seed):
        monitor = stub_monitor(mean, seed)
        for _ in range(50):
            delay = monitor._next_poll_delay()
            assert monitor.min_poll_interval <= delay <= monitor.poll_interval_cap

    def test_fixed_interval_unaffected(self):
        monitor = stub_monitor(5.0, 0)
        monitor.randomize_polls = False
        assert monitor._next_poll_delay() == 5.0

    def test_explicit_bounds_respected(self):
        monitor = stub_monitor(1.0, 0, min_poll_interval=0.9, poll_interval_cap=1.1)
        for _ in range(200):
            assert 0.9 <= monitor._next_poll_delay() <= 1.1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            stub_monitor(1.0, 0, min_poll_interval=2.0, poll_interval_cap=1.0)
        with pytest.raises(ValueError):
            stub_monitor(1.0, 0, min_poll_interval=0.0)


# ----------------------------------------------------------------------
# Generation token (satellite: stop/start double-loop bug)
# ----------------------------------------------------------------------


class TestPollingLoopGeneration:
    def test_stop_polling_stops(self):
        _topo, net, _provider, _watcher, monitor = build()
        monitor.stop_polling()
        before = monitor.metrics.active_polls
        net.run(5.0)
        assert monitor.metrics.active_polls == before

    def test_restart_does_not_double_the_loop(self):
        # Control: one uninterrupted loop.
        _t, net_c, _p, _w, control = build()
        baseline_c = control.metrics.active_polls
        net_c.run(5.0)
        control_polls = control.metrics.active_polls - baseline_c

        # Same deployment, but the loop is stopped and restarted; the
        # stale scheduled tick from the first loop must not survive.
        _t, net_r, _p, _w, restarted = build()
        restarted.stop_polling()
        restarted.start()  # re-subscribes nothing (ACTIVE), re-arms loop
        baseline_r = restarted.metrics.active_polls
        net_r.run(5.0)
        restarted_polls = restarted.metrics.active_polls - baseline_r
        # Identical cadence: restarting shifted the phase but must not
        # add a second loop (the old bug doubled the poll rate).
        assert restarted_polls == control_polls

    def test_stop_invalidates_inflight_retry_burst(self):
        _topo, net, _provider, _watcher, monitor = build(poll_timeout=0.2)
        for channel in net.channels:
            channel.fault_filter = drop_replies
        monitor.poll_all()
        net.run(0.3)  # the first timeouts fire, retries are scheduled
        assert monitor.metrics.poll_timeouts > 0
        monitor.stop_polling()
        polls_at_stop = monitor.metrics.active_polls
        net.run(5.0)
        # Pending timeouts may still tick, but no retry re-polls.
        assert monitor.metrics.active_polls == polls_at_stop


# ----------------------------------------------------------------------
# Timeouts, retries, and recovery accounting
# ----------------------------------------------------------------------


class TestDroppedReplies:
    def test_unanswered_polls_time_out_and_mark_lost(self):
        _topo, net, _provider, _watcher, monitor = build()
        for channel in net.channels:
            channel.fault_filter = drop_replies
        net.run(6.0)
        metrics = monitor.metrics
        assert metrics.poll_timeouts > 0
        assert metrics.poll_retries > 0
        assert metrics.active_polls > metrics.poll_replies
        assert metrics.poll_bursts_abandoned > 0
        assert set(monitor.health.lost()) == {"s1", "s2", "s3"}

    def test_recovery_resyncs_and_reconverges(self):
        _topo, net, _provider, _watcher, monitor = build()
        for channel in net.channels:
            channel.fault_filter = drop_replies
        net.run(6.0)
        assert monitor.health.lost()
        for channel in net.channels:
            channel.fault_filter = None
        net.run(4.0)
        assert monitor.health.all_healthy()
        assert monitor.metrics.resyncs >= 3  # one full resync per switch
        assert mirror_synced(monitor, net)

    def test_rapid_channel_flaps_do_not_storm_resyncs(self):
        """Two outage/recovery cycles on three switches: the monitor
        resyncs once per LOST->HEALTHY reconnect and never piles extra
        resyncs on top of an already-recovered channel."""
        _topo, net, _provider, _watcher, monitor = build()
        for _cycle in range(2):
            for channel in net.channels:
                channel.fault_filter = drop_replies
            net.run(6.0)
            assert monitor.health.lost()
            for channel in net.channels:
                channel.fault_filter = None
            net.run(4.0)
            assert monitor.health.all_healthy()
        reconnects = sum(
            1
            for t in monitor.health.transitions
            if t.from_state is ChannelState.LOST
            and t.to_state is ChannelState.HEALTHY
        )
        assert reconnects == 6  # 3 switches x 2 outage cycles
        assert monitor.metrics.resyncs == reconnects
        assert mirror_synced(monitor, net)

    def test_at_most_one_inflight_poll_per_switch(self):
        _topo, net, _provider, _watcher, monitor = build()
        monitor.poll_switch("s1")
        monitor.poll_switch("s1")
        assert monitor.metrics.polls_superseded >= 1
        assert list(monitor._pending_polls) == ["s1"]
        replies_before = monitor.metrics.poll_replies
        net.run(0.5)
        # Only the fresh poll's reply lands; the superseded one was
        # cancelled at the stats-callback layer.
        assert monitor.metrics.poll_replies == replies_before + 1

    def test_cancelled_stats_callback_never_fires(self):
        _topo, net, _provider, watcher, _monitor = build()
        fired = []
        xid = watcher.request_flow_stats("s1", fired.append)
        assert watcher.cancel_stats_request(xid)
        assert not watcher.cancel_stats_request(xid)  # already gone
        net.run(0.5)
        assert fired == []

    def test_staleness_reported_per_switch(self):
        _topo, net, _provider, _watcher, monitor = build()
        staleness = monitor.switch_staleness()
        assert set(staleness) == {"s1", "s2", "s3"}
        assert all(value < 1.0 for value in staleness.values())
        for channel in net.channels:
            channel.fault_filter = drop_replies
        net.run(6.0)
        assert all(v > 1.0 for v in monitor.switch_staleness().values())


# ----------------------------------------------------------------------
# Service-level degradation (freshness, watch isolation, auth retries)
# ----------------------------------------------------------------------


class TestDegradedAnswers:
    def test_responses_carry_freshness(self):
        tb = build_testbed(linear_topology(2, clients=["c"]), seed=3)
        handle = tb.ask("c", IsolationQuery(authenticate=False))
        freshness = handle.response.freshness
        assert freshness is not None
        assert freshness.snapshot_age >= 0.0
        assert freshness.max_switch_staleness < 5.0
        assert not freshness.degraded

    def test_lost_switch_flagged_in_answer(self):
        tb = build_testbed(
            linear_topology(2, clients=["c"]),
            seed=3,
            mean_poll_interval=0.5,
        )
        # Sever s2's control channels (replies only, so requests are
        # still counted as issued) and let health degrade.
        for channel in tb.network.channels_for_switch("s2"):
            channel.fault_filter = drop_replies
        tb.run(6.0)
        assert "s2" in tb.service.monitor.health.lost()
        handle = tb.ask("c", IsolationQuery(authenticate=False), max_wait=10.0)
        freshness = handle.response.freshness
        assert freshness.degraded
        assert "s2" in freshness.lost_switches
        assert freshness.max_switch_staleness > 1.0


class TestWatchIsolation:
    def test_one_failing_client_does_not_silence_others(self):
        tb = build_testbed(linear_topology(2, clients=["a", "b"]), seed=3)
        service = tb.service
        service.watch_isolation("a")
        service.watch_isolation("b")
        checked = []
        original = service.verifier.isolation

        def flaky(registration, snapshot):
            if registration.name == "a":
                raise RuntimeError("verifier blew up")
            checked.append(registration.name)
            return original(registration, snapshot)

        service.verifier.isolation = flaky  # type: ignore[assignment]
        tb.provider.install_flow("s1", Match(), (), priority=1)
        tb.run(0.5)
        assert service.watch_errors >= 1
        assert any(a.kind == "watch-error" for a in service.alarms)
        assert "b" in checked  # b was still verified after a's failure

    def test_watch_list_mutation_during_check_is_safe(self):
        tb = build_testbed(linear_topology(2, clients=["a", "b"]), seed=3)
        service = tb.service
        service.watch_isolation("a")
        service.watch_isolation("b")
        original = service.verifier.isolation

        def unsubscribing(registration, snapshot):
            # A callback mutating the subscriber list mid-iteration.
            if "a" in service._watched_clients:
                service._watched_clients.remove("a")
            return original(registration, snapshot)

        service.verifier.isolation = unsubscribing  # type: ignore[assignment]
        tb.provider.install_flow("s1", Match(), (), priority=1)
        tb.run(0.5)  # must not raise or skip subscribers
        assert service.watch_errors == 0


class TestAuthRetries:
    def test_silent_targets_rechallenged(self):
        from repro.dataplane.topologies import isp_topology

        tb = build_testbed(
            isp_topology(clients=["alice", "bob"]),
            isolate_clients=True,
            seed=42,
            silent_hosts=["h_par1"],
            auth_retries=2,
        )
        handle = tb.ask("alice", IsolationQuery(), max_wait=10.0)
        auth = handle.response.answer.auth
        # 3 first-wave challenges + 2 re-challenges of the silent host.
        assert auth.requests_issued == 5
        assert auth.replies_received == 2
        assert tb.service.inband.rechallenges_sent == 2
        assert {e.host for e in auth.silent_endpoints} == {"h_par1"}

    def test_no_retries_preserves_single_shot_accounting(self):
        from repro.dataplane.topologies import isp_topology

        tb = build_testbed(
            isp_topology(clients=["alice", "bob"]),
            isolate_clients=True,
            seed=42,
            silent_hosts=["h_par1"],
        )
        handle = tb.ask("alice", IsolationQuery())
        auth = handle.response.answer.auth
        assert auth.requests_issued == 3
        assert tb.service.inband.rechallenges_sent == 0


class TestQuorumWithUnavailableReplicas:
    def test_crashed_replica_reported_not_blamed(self):
        tb = build_testbed(
            linear_topology(2, clients=["c"]), seed=3, record_history=False
        )
        fleet = ReplicatedRVaaS.deploy(
            tb.network, tb.registrations, count=2, seed=9
        )
        fleet.replicas.append(tb.service)
        tb.run(1.0)

        def crash(client, query):
            raise RuntimeError("replica down")

        fleet.replicas[0].answer_locally = crash  # type: ignore[assignment]
        result = fleet.cross_check("c", IsolationQuery(authenticate=False))
        assert result.unavailable == ("rvaas-0",)
        assert result.unanimous  # the two live replicas agree
        assert "rvaas-0" not in result.dissenting

    def test_all_unavailable_raises(self):
        tb = build_testbed(
            linear_topology(2, clients=["c"]), seed=3, record_history=False
        )
        fleet = ReplicatedRVaaS([tb.service])

        def crash(client, query):
            raise RuntimeError("replica down")

        tb.service.answer_locally = crash  # type: ignore[assignment]
        with pytest.raises(QuorumError):
            fleet.cross_check("c", IsolationQuery(authenticate=False))


# ----------------------------------------------------------------------
# Chaos property: verdicts degrade, they never lie
# ----------------------------------------------------------------------


class TestChaosProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        drop=st.floats(min_value=0.0, max_value=0.35),
        delay=st.floats(min_value=0.0, max_value=0.35),
        fault_seed=st.integers(min_value=0, max_value=999),
    )
    def test_mirror_reconverges_and_verdict_matches_ground_truth(
        self, drop, delay, fault_seed
    ):
        plan = FaultPlan.uniform(
            drop=drop, delay=delay, seed=fault_seed, active_until=6.0
        )
        tb = build_testbed(
            linear_topology(2, clients=["c"]),
            seed=3,
            fault_plan=plan,
            mean_poll_interval=0.5,
        )
        tb.run(14.0)
        monitor = tb.service.monitor
        assert mirror_synced(monitor, tb.network)
        registration = tb.registrations["c"]
        query = IsolationQuery(authenticate=False)
        mirror_verdict = tb.service.verifier.answer(
            query, registration, tb.service.snapshot()
        )
        truth_verdict = tb.service.verifier.answer(
            query, registration, ground_truth_snapshot(monitor, tb.network)
        )
        assert mirror_verdict.isolated == truth_verdict.isolated
