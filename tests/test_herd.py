r"""Tests for the herd-immunity audit (verdict taxonomy, cones, oracle).

The fixture graph::

        r          (tier-1 root)
       / \
      t1  t2       (transit)
     / \  / \
    a  b c  d      (stubs; a--b also peer directly)
    |
    e              (stub under a)

With ``verified = {t1, a}`` every verdict class appears (verifying the
root would give every pair a protected up-and-back-down walk through
it, erasing VULNERABLE), and the sweep-based report must agree
pair-for-pair with the brute-force walk enumeration on DAG-structured
graphs (which the generator guarantees).
"""

import pytest
from hypothesis import given, settings, strategies as st
from itertools import combinations

from repro.core.herd import (
    PARTIAL,
    SECURE_INHERITED,
    SECURE_LOCAL,
    VERDICTS,
    VULNERABLE,
    ASRelationships,
    brute_force_verdict,
    herd_immunity_report,
)
from repro.dataplane.asgraph import as_graph_topology

NODES = ["r", "t1", "t2", "a", "b", "c", "d", "e"]
P2C = [
    ("r", "t1"),
    ("r", "t2"),
    ("t1", "a"),
    ("t1", "b"),
    ("t2", "c"),
    ("t2", "d"),
    ("a", "e"),
]
P2P = [("a", "b")]
REL = ASRelationships.from_edges(NODES, P2C, P2P)
VERIFIED = frozenset({"t1", "a"})


class TestCones:
    def test_customer_cones(self):
        assert REL.customer_cone("r") == frozenset(NODES)
        assert REL.customer_cone("t1") == frozenset({"t1", "a", "b", "e"})
        assert REL.customer_cone("a") == frozenset({"a", "e"})
        assert REL.customer_cone("e") == frozenset({"e"})

    def test_cone_sizes(self):
        sizes = REL.cone_sizes()
        assert sizes["r"] == len(NODES)
        assert sizes["e"] == 1
        assert sizes["t2"] == 3


class TestVerdicts:
    def test_all_four_classes_appear(self):
        report = herd_immunity_report(REL, VERIFIED)
        assert all(report.counts[v] >= 1 for v in VERDICTS), report.counts

    def test_individual_verdicts(self):
        report = herd_immunity_report(REL, VERIFIED)
        # Both endpoints verified.
        assert report.verdicts[("t1", "a")] == SECURE_LOCAL
        # b's only ways out run through t1 (its peer a dead-ends at e),
        # so every b<->d path crosses verified transit.
        assert report.verdicts[("b", "d")] == SECURE_INHERITED
        # Every path to e enters through its sole provider a.
        assert report.verdicts[("b", "e")] == SECURE_INHERITED
        # a--b peer directly: the transit-free path is unprotected, but
        # endpoint a is verified.
        assert report.verdicts[("a", "b")] == PARTIAL
        # r--t1 adjacent (transit-free path), but endpoint t1 is
        # verified.
        assert report.verdicts[("r", "t1")] == PARTIAL
        # c and d sit under unverified t2/r with no walk touching the
        # verified t1-subtree on the way.
        assert report.verdicts[("c", "d")] == VULNERABLE
        assert report.verdicts[("t2", "c")] == VULNERABLE

    def test_protected_fraction_matches_counts(self):
        report = herd_immunity_report(REL, VERIFIED)
        secure = (
            report.counts[SECURE_LOCAL] + report.counts[SECURE_INHERITED]
        )
        assert report.protected_fraction == pytest.approx(
            secure / len(report.verdicts)
        )

    def test_cone_coverage(self):
        report = herd_immunity_report(REL, VERIFIED)
        # t1's cone is {t1, a, b, e}; a's adds nothing new -> 4 of 8.
        assert report.verified_cone_coverage == 0.5
        none = herd_immunity_report(REL, frozenset())
        assert none.verified_cone_coverage == 0.0
        assert none.counts[SECURE_LOCAL] == 0
        assert none.counts[SECURE_INHERITED] == 0

    def test_explicit_pairs_and_symmetry(self):
        report = herd_immunity_report(REL, VERIFIED, pairs=[("d", "b")])
        # Canonicalised to (b, d); valley-free paths reverse.
        assert report.verdicts == {("b", "d"): SECURE_INHERITED}

    def test_input_validation(self):
        with pytest.raises(ValueError):
            herd_immunity_report(REL, {"nope"})
        with pytest.raises(ValueError):
            herd_immunity_report(REL, VERIFIED, pairs=[("a", "a")])
        with pytest.raises(ValueError):
            ASRelationships.from_edges(["x"], [("x", "y")], [])

    def test_unreachable_pair_is_vulnerable(self):
        rel = ASRelationships.from_edges(["x", "y"], [], [])
        report = herd_immunity_report(rel, {"x", "y"})
        assert report.verdicts[("x", "y")] == VULNERABLE


class TestOracle:
    def test_fixture_graph_matches_oracle(self):
        report = herd_immunity_report(REL, VERIFIED)
        for s, d in combinations(NODES, 2):
            assert report.verdicts[(s, d)] == brute_force_verdict(
                REL, VERIFIED, s, d
            ), (s, d)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        verified_mask=st.integers(min_value=0, max_value=(1 << 10) - 1),
    )
    def test_seeded_graphs_match_oracle(self, seed, verified_mask):
        asg = as_graph_topology(10, seed=seed)
        rel = asg.relationships()
        verified = frozenset(
            name
            for i, name in enumerate(asg.order)
            if verified_mask & (1 << i)
        )
        report = herd_immunity_report(rel, verified)
        for s, d in combinations(asg.order, 2):
            assert report.verdicts[(s, d)] == brute_force_verdict(
                rel, verified, s, d
            ), (s, d, sorted(verified))
