"""Unit tests for network-wide reachability, paths, and loop detection."""

import pytest

from repro.hsa.headerspace import HeaderSpace
from repro.hsa.network_tf import NetworkTransferFunction
from repro.hsa.reachability import ReachabilityAnalyzer
from repro.hsa.transfer import SnapshotRule, SwitchTransferFunction
from repro.hsa.wildcard import Wildcard
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import Output, SetField, ToController
from repro.openflow.match import Match


def rule(match, actions, priority=0):
    return SnapshotRule(table_id=0, priority=priority, match=match, actions=tuple(actions))


def chain_ntf(rules_by_switch, n=3):
    """Linear chain s1-s2-...-sn; port 1 = host, port 2 = next, port 3 = prev."""
    tfs = {}
    wiring = {}
    edge = {}
    for i in range(1, n + 1):
        name = f"s{i}"
        tfs[name] = SwitchTransferFunction(
            name, rules_by_switch.get(name, []), ports=(1, 2, 3)
        )
        edge[name] = frozenset([1])
        if i < n:
            wiring[(f"s{i}", 2)] = (f"s{i+1}", 3)
            wiring[(f"s{i+1}", 3)] = (f"s{i}", 2)
    return NetworkTransferFunction(tfs, wiring, edge)


DST = Match.build(ip_dst="10.0.0.9")
DST_SPACE = HeaderSpace.single(Wildcard.from_match(DST))


class TestForwardReachability:
    def test_straight_chain(self):
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(2),))],
                "s2": [rule(DST, (Output(2),))],
                "s3": [rule(DST, (Output(1),))],
            }
        )
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        assert result.reaches("s3", 1)
        assert result.switches_traversed == {"s1", "s2", "s3"}
        assert len(result.paths) == 1
        assert result.paths[0].hops == (("s1", 1, 2), ("s2", 3, 2), ("s3", 3, 1))

    def test_blackhole_reaches_nothing(self):
        ntf = chain_ntf({"s1": [rule(DST, (Output(2),))]})
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        assert result.edge_zones() == []

    def test_fork_reaches_multiple(self):
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(1), Output(2)))],
                "s2": [rule(DST, (Output(1),))],
            }
        )
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        refs = result.edge_port_refs()
        assert ("s1", 1) in refs and ("s2", 1) in refs

    def test_controller_zone(self):
        ntf = chain_ntf({"s1": [rule(DST, (ToController(),))]})
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        assert [z.kind for z in result.zones] == ["controller"]

    def test_empty_space_no_work(self):
        ntf = chain_ntf({"s1": [rule(DST, (Output(2),))]})
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, HeaderSpace.empty())
        assert result.expansions == 0

    def test_unbound_port_zone(self):
        ntf = chain_ntf({"s1": [rule(DST, (Output(9),))]})
        # Port 9 exists in no wiring/edge map -> unbound zone.
        tfs = ntf.transfer_functions
        tfs["s1"] = SwitchTransferFunction("s1", [rule(DST, (Output(9),))], ports=(1, 2, 9))
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        assert [z.kind for z in result.zones] == ["unbound"]

    def test_path_links(self):
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(2),))],
                "s2": [rule(DST, (Output(2),))],
                "s3": [rule(DST, (Output(1),))],
            }
        )
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        assert result.paths[0].links() == (("s1", "s2"), ("s2", "s3"))
        assert frozenset(("s1", "s2")) in result.links_traversed


class TestLoopDetection:
    def test_two_switch_loop_detected(self):
        # s1 sends to s2, s2 sends back to s1, forever.
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(2),))],
                "s2": [rule(DST, (Output(3),))],
            }
        )
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        assert result.loops
        loop = result.loops[0]
        # The loop is reported at the first *revisited* ingress: traffic
        # enters s1 at the host port, bounces s1->s2->s1->s2, and the
        # second arrival at (s2, port 3) closes the cycle.
        assert (loop.switch, loop.port) == ("s2", 3)
        assert not loop.space.is_empty()

    def test_rewrite_breaks_loop(self):
        # s2 rewrites the destination, so returning traffic no longer loops.
        ntf = chain_ntf(
            {
                "s1": [
                    rule(DST, (Output(2),), priority=5),
                    rule(Match.build(ip_dst="10.0.0.8"), (Output(1),), priority=6),
                ],
                "s2": [
                    rule(DST, (SetField("ip_dst", IPv4Address.parse("10.0.0.8")), Output(3)))
                ],
            }
        )
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        assert not result.loops
        assert result.reaches("s1", 1)

    def test_detect_all_loops_sweep(self):
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(2),))],
                "s2": [rule(DST, (Output(3),))],
            }
        )
        loops = ReachabilityAnalyzer(ntf).detect_all_loops(DST_SPACE)
        assert loops


class TestInverseReachability:
    def test_sources_reaching(self):
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(2),))],
                "s2": [rule(DST, (Output(2),))],
                "s3": [rule(DST, (Output(1),))],
            }
        )
        sources = ReachabilityAnalyzer(ntf).sources_reaching("s3", 1, DST_SPACE)
        assert set(sources) == {("s1", 1), ("s2", 1)}

    def test_sources_respects_candidates(self):
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(2),))],
                "s2": [rule(DST, (Output(2),))],
                "s3": [rule(DST, (Output(1),))],
            }
        )
        sources = ReachabilityAnalyzer(ntf).sources_reaching(
            "s3", 1, DST_SPACE, candidate_ports=(("s1", 1),)
        )
        assert set(sources) == {("s1", 1)}

    def test_target_itself_excluded(self):
        ntf = chain_ntf({"s3": [rule(DST, (Output(1),))]})
        sources = ReachabilityAnalyzer(ntf).sources_reaching("s3", 1, DST_SPACE)
        assert ("s3", 1) not in sources


class TestCoverageGuard:
    def test_diamond_does_not_duplicate_endpoints(self):
        # s1 forks to s2 and s3... modelled as chain fork via ports: use
        # a custom NTF: s1 -> s2 via two parallel links is not supported
        # by chain_ntf, so assert on expansion counting instead: the
        # second arrival at an already-covered port is not re-expanded.
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(2), Output(2)))],  # duplicate output
                "s2": [rule(DST, (Output(1),))],
            }
        )
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        # Two copies leave s1, but s2 expands once.
        assert result.expansions == 2
        assert len(result.edge_zones()) == 1


class TestDeepChains:
    """The iterative worklist must handle chains recursion cannot."""

    def _deep_chain(self, length):
        forward = {f"s{i}": [rule(DST, (Output(2),))] for i in range(1, length)}
        forward[f"s{length}"] = [rule(DST, (Output(1),))]
        return chain_ntf(forward, n=length)

    def test_no_recursion_error_on_double_max_depth_chain(self):
        # Twice the default max_depth, traversed end to end: recursive
        # propagation would need ~4 stack frames per hop; the explicit
        # worklist needs none.
        import sys

        length = 2 * 64
        ntf = self._deep_chain(length)
        analyzer = ReachabilityAnalyzer(ntf, max_depth=length + 4)
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(220)  # far below what recursion would need
        try:
            result = analyzer.analyze("s1", 1, DST_SPACE)
        finally:
            sys.setrecursionlimit(limit)
        assert result.reaches(f"s{length}", 1)
        assert result.expansions == length

    def test_long_chain_loop_check_is_set_based(self):
        # A pure chain never forks, so every frame reuses one visited
        # set: expansions stay linear and the worklist stays flat.  (The
        # pre-rewrite kernel rescanned the whole path tuple per hop —
        # O(length²) — and recursed once per switch.)
        length = 300
        ntf = self._deep_chain(length)
        result = ReachabilityAnalyzer(ntf, max_depth=length + 4).analyze(
            "s1", 1, DST_SPACE
        )
        assert result.reaches(f"s{length}", 1)
        assert result.expansions == length
        assert result.worklist_peak <= 3

    def test_worklist_peak_recorded(self):
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(2),))],
                "s2": [rule(DST, (Output(2),))],
                "s3": [rule(DST, (Output(1),))],
            }
        )
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        assert result.worklist_peak >= 1

    def test_loop_still_detected_after_rewrite(self):
        # Ring of two switches bouncing traffic: the per-branch visited
        # set must still catch the re-entry exactly like the path scan.
        ntf = chain_ntf(
            {
                "s1": [rule(DST, (Output(2),))],
                "s2": [rule(DST, (Output(3),))],  # back toward s1
            },
            n=2,
        )
        result = ReachabilityAnalyzer(ntf).analyze("s1", 1, DST_SPACE)
        assert len(result.loops) == 1
        # The first re-entered ingress is (s2, 3): s1:1 → s2:3 → s1:2 → s2:3.
        assert result.loops[0].switch == "s2"
        assert result.loops[0].port == 3
