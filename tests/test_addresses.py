"""Unit tests for repro.netlib.addresses."""

import pytest
from hypothesis import given, strategies as st

from repro.netlib.addresses import (
    BROADCAST_MAC,
    IPv4Address,
    IPv4Network,
    MacAddress,
    ip,
    mac,
)


class TestMacAddress:
    def test_parse_colon_notation(self):
        addr = MacAddress.parse("aa:bb:cc:dd:ee:ff")
        assert addr.value == 0xAABBCCDDEEFF

    def test_parse_dash_notation(self):
        assert MacAddress.parse("aa-bb-cc-dd-ee-ff").value == 0xAABBCCDDEEFF

    def test_str_roundtrip(self):
        addr = MacAddress(0x020000000102)
        assert MacAddress.parse(str(addr)) == addr

    def test_str_formats_lowercase_padded(self):
        assert str(MacAddress(0x01)) == "00:00:00:00:00:01"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    def test_rejects_malformed_text(self):
        for bad in ("aa:bb:cc", "zz:bb:cc:dd:ee:ff", "aabbccddeeff", ""):
            with pytest.raises(ValueError):
                MacAddress.parse(bad)

    def test_from_host_index_is_locally_administered_unicast(self):
        addr = MacAddress.from_host_index(5)
        assert not addr.is_multicast
        assert (addr.value >> 40) == 0x02

    def test_from_host_index_distinct(self):
        assert MacAddress.from_host_index(1) != MacAddress.from_host_index(2)

    def test_from_host_index_range(self):
        with pytest.raises(ValueError):
            MacAddress.from_host_index(1 << 24)

    def test_broadcast(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast
        assert not MacAddress(0).is_broadcast

    def test_ordering_and_hash(self):
        a, b = MacAddress(1), MacAddress(2)
        assert a < b
        assert len({a, b, MacAddress(1)}) == 2


class TestIPv4Address:
    def test_parse(self):
        assert IPv4Address.parse("10.0.0.1").value == (10 << 24) | 1

    def test_str_roundtrip(self):
        for text in ("0.0.0.0", "255.255.255.255", "192.168.1.42"):
            assert str(IPv4Address.parse(text)) == text

    def test_rejects_octet_overflow(self):
        with pytest.raises(ValueError):
            IPv4Address.parse("256.0.0.1")

    def test_rejects_malformed(self):
        for bad in ("10.0.0", "10.0.0.0.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                IPv4Address.parse(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_str_parse_roundtrip_property(self, value):
        addr = IPv4Address(value)
        assert IPv4Address.parse(str(addr)) == addr


class TestIPv4Network:
    def test_parse_and_str(self):
        net = IPv4Network.parse("10.0.0.0/8")
        assert str(net) == "10.0.0.0/8"
        assert net.prefix_len == 8

    def test_contains(self):
        net = IPv4Network.parse("10.1.0.0/16")
        assert net.contains(IPv4Address.parse("10.1.2.3"))
        assert not net.contains(IPv4Address.parse("10.2.0.0"))

    def test_zero_prefix_contains_everything(self):
        net = IPv4Network.parse("0.0.0.0/0")
        assert net.contains(IPv4Address.parse("255.255.255.255"))

    def test_slash32_is_exact(self):
        net = IPv4Network.parse("10.0.0.1/32")
        assert net.contains(IPv4Address.parse("10.0.0.1"))
        assert not net.contains(IPv4Address.parse("10.0.0.2"))

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            IPv4Network.parse("10.0.0.1/8")

    def test_rejects_bad_prefix(self):
        with pytest.raises(ValueError):
            IPv4Network(IPv4Address(0), 33)

    def test_hosts_excludes_network_and_broadcast(self):
        hosts = list(IPv4Network.parse("10.0.0.0/30").hosts())
        assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_hosts_slash31_keeps_both(self):
        hosts = list(IPv4Network.parse("10.0.0.0/31").hosts())
        assert len(hosts) == 2

    def test_in_network_helper(self):
        assert IPv4Address.parse("10.0.0.1").in_network(
            IPv4Network.parse("10.0.0.0/24")
        )

    @given(st.integers(min_value=0, max_value=32))
    def test_mask_has_prefix_len_bits(self, prefix_len):
        net = IPv4Network(IPv4Address(0), prefix_len)
        assert bin(net.mask).count("1") == prefix_len


class TestCoercionHelpers:
    def test_mac_coercions(self):
        assert mac("aa:bb:cc:dd:ee:ff") == MacAddress(0xAABBCCDDEEFF)
        assert mac(5) == MacAddress(5)
        assert mac(MacAddress(7)) == MacAddress(7)

    def test_ip_coercions(self):
        assert ip("10.0.0.1") == IPv4Address.parse("10.0.0.1")
        assert ip(42) == IPv4Address(42)
        assert ip(IPv4Address(9)) == IPv4Address(9)
