"""Tests for the client<->RVaaS wire protocol (sealing, signing)."""

import random

import pytest

from repro.core.protocol import (
    AuthChallenge,
    AuthReply,
    ClientRegistration,
    HostRecord,
    QueryRequest,
    QueryResponse,
    SealedRequest,
    seal_request,
    seal_response,
    sign_auth_reply,
    sign_challenge,
    unseal_request,
    unseal_response,
    verify_auth_reply,
    verify_challenge,
)
from repro.core.queries import IsolationQuery, ReachableDestinationsAnswer
from repro.crypto.keys import generate_keypair
from repro.crypto.sign import SignatureError


@pytest.fixture(scope="module")
def keys():
    rng = random.Random(17)
    return {
        "rvaas": generate_keypair("rvaas", rng=rng),
        "alice": generate_keypair("alice", rng=rng),
        "mallory": generate_keypair("mallory", rng=rng),
        "host": generate_keypair("host", rng=rng),
    }


def make_request():
    return QueryRequest(
        client="alice", query=IsolationQuery(), nonce=42, sent_at=1.0
    )


class TestRequestSealing:
    def test_roundtrip(self, keys):
        rng = random.Random(0)
        sealed = seal_request(
            make_request(), keys["rvaas"].public, keys["alice"].private, rng
        )
        request = unseal_request(
            sealed, keys["rvaas"].private, keys["alice"].public
        )
        assert request == make_request()

    def test_provider_cannot_read_query(self, keys):
        """Confidentiality: the sealed body must not contain the query."""
        import pickle

        rng = random.Random(0)
        sealed = seal_request(
            make_request(), keys["rvaas"].public, keys["alice"].private, rng
        )
        assert b"IsolationQuery" not in sealed.ciphertext.body
        assert b"alice" not in sealed.ciphertext.body

    def test_forged_signature_rejected(self, keys):
        rng = random.Random(0)
        sealed = seal_request(
            make_request(), keys["rvaas"].public, keys["mallory"].private, rng
        )
        with pytest.raises(SignatureError):
            unseal_request(sealed, keys["rvaas"].private, keys["alice"].public)

    def test_client_name_mismatch_rejected(self, keys):
        from dataclasses import replace

        rng = random.Random(0)
        sealed = seal_request(
            make_request(), keys["rvaas"].public, keys["alice"].private, rng
        )
        # Mallory re-labels alice's envelope... but cannot re-sign the
        # body with alice's key, so verification against *mallory's* key
        # (looked up from the claimed name) fails.
        relabelled = replace(sealed, client="mallory")
        with pytest.raises(SignatureError):
            unseal_request(relabelled, keys["rvaas"].private, keys["mallory"].public)


class TestResponseSealing:
    def make_response(self):
        return QueryResponse(
            client="alice",
            nonce=42,
            answer=ReachableDestinationsAnswer(endpoints=()),
            snapshot_version=7,
            answered_at=2.0,
        )

    def test_roundtrip(self, keys):
        rng = random.Random(0)
        sealed = seal_response(
            self.make_response(), keys["alice"].public, keys["rvaas"].private, rng
        )
        response = unseal_response(
            sealed, keys["alice"].private, keys["rvaas"].public
        )
        assert response.nonce == 42 and response.snapshot_version == 7

    def test_forged_response_rejected(self, keys):
        """A compromised provider cannot fake integrity replies."""
        rng = random.Random(0)
        sealed = seal_response(
            self.make_response(), keys["alice"].public, keys["mallory"].private, rng
        )
        with pytest.raises(SignatureError):
            unseal_response(sealed, keys["alice"].private, keys["rvaas"].public)

    def test_tampered_body_rejected(self, keys):
        from dataclasses import replace

        rng = random.Random(0)
        sealed = seal_response(
            self.make_response(), keys["alice"].public, keys["rvaas"].private, rng
        )
        body = sealed.ciphertext.body
        tampered_ct = replace(
            sealed.ciphertext, body=bytes([body[0] ^ 1]) + body[1:]
        )
        tampered = replace(sealed, ciphertext=tampered_ct)
        with pytest.raises((SignatureError, Exception)):
            unseal_response(tampered, keys["alice"].private, keys["rvaas"].public)


class TestAuthMessages:
    def test_challenge_sign_verify(self, keys):
        challenge = sign_challenge(
            AuthChallenge(nonce=1, round_id=2, service="rvaas"),
            keys["rvaas"].private,
        )
        assert verify_challenge(challenge, keys["rvaas"].public)

    def test_forged_challenge_rejected(self, keys):
        challenge = sign_challenge(
            AuthChallenge(nonce=1, round_id=2, service="rvaas"),
            keys["mallory"].private,
        )
        assert not verify_challenge(challenge, keys["rvaas"].public)

    def test_auth_reply_sign_verify(self, keys):
        reply = sign_auth_reply(
            AuthReply(host="h1", client="alice", nonce=1, round_id=2),
            keys["host"].private,
        )
        assert verify_auth_reply(reply, keys["host"].public)
        assert not verify_auth_reply(reply, keys["mallory"].public)

    def test_reply_binding_to_nonce(self, keys):
        from dataclasses import replace

        reply = sign_auth_reply(
            AuthReply(host="h1", client="alice", nonce=1, round_id=2),
            keys["host"].private,
        )
        replayed = replace(reply, nonce=99)
        assert not verify_auth_reply(replayed, keys["host"].public)


class TestRegistration:
    def test_access_points_and_lookup(self, keys):
        record = HostRecord(
            name="h1", ip=167772161, switch="s1", port=1,
            public_key=keys["host"].public,
        )
        registration = ClientRegistration(
            name="alice", public_key=keys["alice"].public, hosts=(record,)
        )
        assert registration.access_points == frozenset({("s1", 1)})
        assert registration.host_ips == (167772161,)
        assert registration.key_for_host("h1") == keys["host"].public
        assert registration.key_for_host("h2") is None
        assert registration.host_at("s1", 1).name == "h1"
        assert registration.host_at("s1", 2) is None
