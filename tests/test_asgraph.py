"""Tests for the synthetic AS-graph generator (experiment E22).

The generator must be deterministic per seed, honour Gao-Rexford
structure (providers precede customers, roots form a peering mesh,
valley-free route patterns), produce heavy-tailed customer cones, and
emit forwarding state under which every host can actually reach every
other host's delivery port.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import VerificationEngine
from repro.dataplane.asgraph import (
    as_graph_topology,
    build_rules,
    build_snapshot,
    client_registration,
    valley_free_next_hops,
)
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.wildcard import Wildcard


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = as_graph_topology(15, seed=4)
        b = as_graph_topology(15, seed=4)
        assert a.p2c == b.p2c
        assert a.p2p == b.p2p
        assert [n.prefix for n in a.nodes.values()] == [
            n.prefix for n in b.nodes.values()
        ]
        c = as_graph_topology(15, seed=5)
        assert a.p2c != c.p2c

    def test_providers_precede_customers(self):
        asg = as_graph_topology(30, seed=0)
        index = {n: i for i, n in enumerate(asg.order)}
        for provider, customer in asg.p2c:
            assert index[provider] < index[customer]

    def test_roots_fully_peered(self):
        asg = as_graph_topology(20, seed=2, n_roots=4)
        roots = asg.order[:4]
        for i, a in enumerate(roots):
            for b in roots[i + 1:]:
                assert b in asg.peers[a]
        # Roots have no providers; every non-root has at least one.
        for name in roots:
            assert not asg.providers[name]
        for name in asg.order[4:]:
            assert asg.providers[name]

    def test_heavy_tailed_cones(self):
        asg = as_graph_topology(60, seed=0)
        cones = sorted(asg.relationships().cone_sizes().values(), reverse=True)
        # The biggest transit cone dwarfs the median; most ASes are stubs.
        assert cones[0] >= 10 * cones[len(cones) // 2]
        assert sum(1 for c in cones if c == 1) >= len(cones) // 3

    def test_unique_prefixes_and_valid_topology(self):
        asg = as_graph_topology(25, seed=1)
        prefixes = [n.prefix for n in asg.nodes.values()]
        assert len(set(prefixes)) == len(prefixes)
        asg.topology.validate()  # no port reused across links/hosts
        assert len(asg.topology.client_hosts("acme")) >= 1

    def test_domain_of_switch_partition(self):
        asg = as_graph_topology(10, seed=9)
        for name, node in asg.nodes.items():
            for switch in node.switches:
                assert asg.domain_of_switch(switch) == name


class TestValleyFreeRouting:
    def _edge_kind(self, asg, a, b):
        """Label of the directed step a -> b."""
        if b in asg.providers[a]:
            return "up"
        if b in asg.customers[a]:
            return "down"
        if b in asg.peers[a]:
            return "peer"
        raise AssertionError(f"{a} -> {b} is not an adjacency")

    def test_full_reachability_and_valley_free_paths(self):
        asg = as_graph_topology(18, seed=6)
        for dest in asg.order:
            hops = valley_free_next_hops(asg, dest)
            assert set(hops) == set(asg.order) - {dest}
            for start in asg.order:
                if start == dest:
                    continue
                # Follow next hops; the label sequence must match
                # up*(peer)?down* and terminate at dest.
                labels = []
                node = start
                for _ in range(len(asg.order)):
                    if node == dest:
                        break
                    nxt = hops[node]
                    labels.append(self._edge_kind(asg, node, nxt))
                    node = nxt
                assert node == dest, f"route {start}->{dest} did not converge"
                phase = 0  # 0=climbing, 1=descending
                peers_seen = 0
                for label in labels:
                    if label == "up":
                        assert phase == 0, labels
                    elif label == "peer":
                        assert phase == 0, labels
                        peers_seen += 1
                        phase = 1
                    else:
                        phase = 1
                assert peers_seen <= 1

    def test_next_hops_deterministic(self):
        asg = as_graph_topology(18, seed=6)
        dest = asg.order[-1]
        assert valley_free_next_hops(asg, dest) == valley_free_next_hops(
            asg, dest
        )


class TestForwardingState:
    def test_border_fib_covers_all_prefixes(self):
        asg = as_graph_topology(12, seed=3)
        rules = build_rules(asg)
        for name, node in asg.nodes.items():
            fib = [
                r
                for r in rules[node.border]
                if r.priority == 100 and r.match.ip_dst is not None
            ]
            # One route per other AS (full valley-free reachability).
            assert len(fib) == len(asg.order) - 1

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_every_host_reaches_every_host(self, seed):
        asg = as_graph_topology(8, seed=seed, client_sites=2)
        snapshot = build_snapshot(asg)
        engine = VerificationEngine()
        all_ports = {
            (h.switch, h.port): h.name for h in asg.topology.hosts.values()
        }
        source = next(iter(asg.topology.hosts.values()))
        space = HeaderSpace.single(
            Wildcard.from_fields(ip_src=source.ip.value, vlan_id=0)
        )
        result = engine.analyze(snapshot, source.switch, source.port, space)
        reached = {
            (z.switch, z.port) for z in result.zones if z.kind == "edge"
        }
        assert reached == set(all_ports)
        assert not result.loops

    def test_registration_covers_client_hosts(self):
        asg = as_graph_topology(16, seed=0, client="acme", client_sites=3)
        reg = client_registration(asg)
        assert reg.name == "acme"
        assert len(reg.hosts) == len(asg.topology.client_hosts("acme"))
        by_name = {h.name: h for h in asg.topology.hosts.values()}
        for record in reg.hosts:
            spec = by_name[record.name]
            assert record.ip == spec.ip.value
            assert (record.switch, record.port) == (spec.switch, spec.port)


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            as_graph_topology(1)
        with pytest.raises(ValueError):
            as_graph_topology(5, n_roots=9)
        with pytest.raises(ValueError):
            as_graph_topology(5, switches_per_as=0)
