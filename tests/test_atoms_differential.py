"""Differential tests: the atomic-predicate backend vs the wildcard path.

The atom engine (bitset header sets over equivalence classes, plus the
precomputed all-ingress reachability matrix) must be *byte-identical* to
the wildcard fast path on every query it serves — not merely
semantically equal.  Three layers of evidence:

* **Verifier level** — random snapshots + random queries, answered by
  two :class:`LogicalVerifier` instances that differ only in the
  engine's backend.  The answer dataclasses are frozen, so ``==`` is a
  byte-for-byte comparison of the signed payload content.
* **Kernel level** — the matrix's per-ingress arrival sets, decoded
  back to wildcards, against the frozen :mod:`repro.hsa.reference`
  oracle (the pre-rewrite kernel that also guards the PR-2 fast path).
* **Unit level** — :class:`AtomTable` interning, encode/decode
  round-trips, and delta-driven invalidation through the engine's
  artifact cache.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import SnapshotDelta, VerificationEngine
from repro.core.protocol import ClientRegistration, HostRecord
from repro.core.queries import TrafficScope
from repro.core.snapshot import NetworkSnapshot
from repro.core.verifier import LogicalVerifier
from repro.crypto.keys import PublicKey
from repro.hsa.atoms import GLOBAL_ATOM_TABLE, AtomTable
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.reachability import build_reachability_matrix
from repro.hsa.reference import (
    ReferenceReachabilityAnalyzer,
    reference_network_tf,
)
from repro.hsa.transfer import SnapshotRule
from repro.hsa.wildcard import Wildcard
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import (
    Drop,
    Flood,
    GotoTable,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from repro.openflow.match import Match

# Three switches in a chain; ports: 1 = edge, 2 = toward next, 3 = toward prev.
SWITCHES = ("s1", "s2", "s3")
WIRING = {
    ("s1", 2): ("s2", 3),
    ("s2", 3): ("s1", 2),
    ("s2", 2): ("s3", 3),
    ("s3", 3): ("s2", 2),
}
EDGE_PORTS = {name: frozenset([1]) for name in SWITCHES}
SWITCH_PORTS = {name: (1, 2, 3) for name in SWITCHES}

IPS = [IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")]
TP_PORTS = [80, 81]

_KEY = PublicKey(n=1, e=1)

REGISTRATIONS = {
    "alice": ClientRegistration(
        name="alice",
        public_key=_KEY,
        hosts=(
            HostRecord(
                name="a1", ip=IPS[0].value, switch="s1", port=1, public_key=_KEY
            ),
        ),
    ),
    "bob": ClientRegistration(
        name="bob",
        public_key=_KEY,
        hosts=(
            HostRecord(
                name="b1", ip=IPS[1].value, switch="s3", port=1, public_key=_KEY
            ),
        ),
    ),
}


def match_strategy():
    return st.builds(
        Match,
        in_port=st.sampled_from([None, None, 1, 2, 3]),
        ip_dst=st.sampled_from([None, *IPS]),
        ip_src=st.sampled_from([None, *IPS]),
        tp_dst=st.sampled_from([None, *TP_PORTS]),
        vlan_id=st.sampled_from([None, 0, 5]),
    )


def action_strategy(allow_goto: bool):
    options = [
        st.builds(Output, port=st.sampled_from([1, 2, 3])),
        st.just(Drop()),
        st.just(Flood()),
        st.just(ToController()),
        st.builds(
            SetField, field=st.just("tp_dst"), value=st.sampled_from(TP_PORTS)
        ),
        st.builds(PushVlan, vlan_id=st.just(5)),
        st.just(PopVlan()),
    ]
    if allow_goto:
        options.append(st.just(GotoTable(1)))
    return st.one_of(options)


def rule_strategy():
    def build(table, match, actions, priority):
        return SnapshotRule(
            table_id=table, priority=priority, match=match, actions=tuple(actions)
        )

    return st.sampled_from([0, 0, 0, 1]).flatmap(
        lambda table: st.builds(
            build,
            st.just(table),
            match_strategy(),
            st.lists(action_strategy(allow_goto=table == 0), min_size=1, max_size=3),
            st.integers(min_value=0, max_value=3),
        )
    )


def config_strategy():
    return st.fixed_dictionaries(
        {name: st.lists(rule_strategy(), max_size=6) for name in SWITCHES}
    )


def scope_strategy():
    # 80 appears in seeded rules often; 443 is deliberately never
    # registered, forcing the per-query fallback path.
    return st.builds(
        TrafficScope,
        tp_dst=st.sampled_from([None, None, 80, 443]),
        ip_proto=st.sampled_from([None, 17]),
    )


def space_strategy():
    def build(dst, dport, vlan):
        fields = {}
        if dst is not None:
            fields["ip_dst"] = dst.value
        if dport is not None:
            fields["tp_dst"] = dport
        if vlan is not None:
            fields["vlan_id"] = vlan
        return HeaderSpace.single(
            Wildcard.from_fields(**fields) if fields else Wildcard.all()
        )

    return st.builds(
        build,
        st.sampled_from([None, *IPS]),
        st.sampled_from([None, *TP_PORTS]),
        st.sampled_from([None, 0, 5]),
    )


def snapshot_from(config, version: int = 1) -> NetworkSnapshot:
    return NetworkSnapshot(
        version=version,
        taken_at=0.0,
        rules={name: tuple(rules) for name, rules in config.items()},
        meters=(),
        wiring=WIRING,
        edge_ports=EDGE_PORTS,
        switch_ports=SWITCH_PORTS,
    )


# ----------------------------------------------------------------------
# Verifier level: byte-identical signed-answer payloads
# ----------------------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=config_strategy(), scope=scope_strategy())
def test_atom_backend_answers_byte_identical(config, scope):
    snapshot = snapshot_from(config)
    wildcard = LogicalVerifier(
        REGISTRATIONS, engine=VerificationEngine(backend="wildcard")
    )
    atom = LogicalVerifier(
        REGISTRATIONS, engine=VerificationEngine(backend="atom")
    )
    for registration in REGISTRATIONS.values():
        assert wildcard.reachable_destinations(
            registration, snapshot, scope
        ) == atom.reachable_destinations(registration, snapshot, scope)
        assert wildcard.reaching_sources(
            registration, snapshot, scope
        ) == atom.reaching_sources(registration, snapshot, scope)
        assert wildcard.isolation(registration, snapshot, scope) == atom.isolation(
            registration, snapshot, scope
        )
        assert wildcard.geo_location(
            registration, snapshot, scope
        ) == atom.geo_location(registration, snapshot, scope)
        assert wildcard.waypoint_avoidance(
            registration, snapshot, ("eu",), scope
        ) == atom.waypoint_avoidance(registration, snapshot, ("eu",), scope)


@settings(max_examples=20, deadline=None)
@given(config=config_strategy())
def test_atom_backend_actually_serves_from_matrix(config):
    """The comparison above must not pass merely because everything
    fell back: unscoped queries from seeded hosts are always served."""
    snapshot = snapshot_from(config)
    atom = LogicalVerifier(
        REGISTRATIONS, engine=VerificationEngine(backend="atom")
    )
    for registration in REGISTRATIONS.values():
        atom.reachable_destinations(registration, snapshot)
    metrics = atom.engine.metrics
    assert metrics.atom_served_queries >= len(REGISTRATIONS)
    assert metrics.atom_fallbacks == 0
    assert metrics.atom_matrix_builds == 1


# ----------------------------------------------------------------------
# Kernel level: matrix arrivals vs the frozen reference oracle
# ----------------------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=config_strategy(), space=space_strategy())
def test_matrix_matches_reference_oracle(config, space):
    ntf = snapshot_from(config).network_tf()
    atom_space = GLOBAL_ATOM_TABLE.space_for(
        list(ntf.atom_constraints()) + list(space.wildcards)
    )
    assert atom_space is not None
    query_bits = atom_space.encode_space(space)
    assert query_bits is not None, "seeded query space must encode exactly"
    matrix = build_reachability_matrix(ntf, atom_space)
    reference = ReferenceReachabilityAnalyzer(reference_network_tf(ntf))
    for switch in SWITCHES:
        result = reference.analyze(switch, 1, space)
        row = matrix.row((switch, 1))
        # Same set of reached zones...
        expected = {}
        for zone in result.zones:
            key = (zone.kind, zone.switch, zone.port)
            expected[key] = (
                expected.get(key, HeaderSpace.empty()).union(zone.space)
            )
        served = {
            key
            for key, bits in row.reach.items()
            if bits & query_bits
        }
        assert served == set(expected), (
            f"zones diverged from {switch}: {served} != {set(expected)}"
        )
        # ...and the same arrival spaces, decoded back to wildcards.
        for key, want in expected.items():
            arrived = matrix.arrived_space((switch, 1), key, query_bits)
            assert atom_space.decode(arrived) == want, (
                f"arrival space diverged at {key} from {switch}"
            )
        # Traversed switches agree too (geo queries depend on them).
        traversed = {
            name
            for name, bits in row.traversed.items()
            if bits & query_bits
        }
        assert traversed == result.switches_traversed


# ----------------------------------------------------------------------
# Unit level: interning, round-trips, invalidation
# ----------------------------------------------------------------------


def test_atom_table_interns_by_constraint_content():
    table = AtomTable()
    constraints = [
        Wildcard.from_fields(ip_dst=IPS[0].value),
        Wildcard.from_fields(tp_dst=80),
    ]
    first = table.space_for(constraints)
    # Same content, different order and duplicates: same object.
    second = table.space_for(list(reversed(constraints)) + constraints[:1])
    assert first is second
    assert table.stats()["builds"] == 1
    assert table.stats()["hits"] == 1
    # Different content: different universe.
    third = table.space_for(constraints + [Wildcard.from_fields(vlan_id=5)])
    assert third is not first
    assert table.stats()["builds"] == 2


def test_atom_table_overflow_returns_none():
    table = AtomTable(atom_limit=4)
    constraints = [
        Wildcard.from_fields(ip_dst=IPS[0].value),
        Wildcard.from_fields(ip_src=IPS[0].value),
        Wildcard.from_fields(tp_dst=80),
    ]
    assert table.space_for(constraints) is None
    assert table.stats()["overflows"] == 1


@settings(max_examples=60, deadline=None)
@given(
    wildcards=st.lists(
        st.builds(
            lambda ip, tp, vlan: Wildcard.from_fields(
                **{
                    k: v
                    for k, v in (
                        ("ip_dst", ip),
                        ("tp_dst", tp),
                        ("vlan_id", vlan),
                    )
                    if v is not None
                }
            ),
            st.sampled_from([None, IPS[0].value, IPS[1].value]),
            st.sampled_from([None, *TP_PORTS]),
            st.sampled_from([None, 0, 5]),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_encode_decode_round_trip(wildcards):
    table = AtomTable()
    space = table.space_for(wildcards)
    assert space is not None
    for wildcard in wildcards:
        bits = space.encode_space(HeaderSpace.single(wildcard))
        assert bits is not None, "registered constraints must encode exactly"
        decoded = space.decode(bits)
        # decode is a right-inverse of encode (bit-exact)...
        assert space.encode_space(decoded) == bits
        # ...and semantically the identity on registered spaces.
        assert decoded == HeaderSpace.single(wildcard)
    # The full and empty sets round-trip too.
    assert space.decode(space.full_bits) == HeaderSpace.all()
    assert space.decode(0).is_empty()
    assert space.encode_space(HeaderSpace.all()) == space.full_bits


def test_unregistered_constraint_refuses_to_encode():
    table = AtomTable()
    space = table.space_for([Wildcard.from_fields(tp_dst=80)])
    assert space is not None
    # tp_dst=81 splits the "everything but 80" cell: inexact, so refused.
    assert space.encode_space(
        HeaderSpace.single(Wildcard.from_fields(tp_dst=81))
    ) is None


def test_delta_invalidation_rebuilds_atom_artifacts():
    base = {
        "s1": [
            SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(2),)),
        ],
        "s2": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(2),))],
        "s3": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(1),))],
    }
    engine = VerificationEngine(backend="atom")
    engine.compile(snapshot_from(base, version=1))
    assert engine.metrics.atom_matrix_builds == 1

    # Same content, new version: artifact hit, no rebuild.
    engine.compile(snapshot_from(base, version=2))
    assert engine.metrics.atom_matrix_builds == 1
    assert engine.metrics.atom_intern_hits >= 1

    # Rule churn changes the content hash: the stale artifact is never
    # served again — the matrix is *repaired* from the predecessor (the
    # new tp_dst=81 constant splits an atom; only s1's rows re-run).
    changed = dict(base)
    changed["s1"] = base["s1"] + [
        SnapshotRule(0, 9, Match(tp_dst=81), (Drop(),))
    ]
    engine.apply_delta(
        SnapshotDelta(
            since_version=2, version=3, changed_switches=frozenset(["s1"])
        )
    )
    engine.compile(snapshot_from(changed, version=3))
    assert engine.metrics.atom_matrix_builds == 1
    assert engine.metrics.matrix_repairs == 1
    assert engine.metrics.rows_repaired >= 1
    assert engine.metrics.atoms_split >= 1

    # A wiring change clears artifacts *and* repair predecessors: the
    # next compile is a cold rebuild, not a repair.
    engine.apply_delta(
        SnapshotDelta(since_version=3, version=4, wiring_changed=True)
    )
    engine.compile(snapshot_from(changed, version=4))
    assert engine.metrics.atom_matrix_builds == 2
    assert engine.metrics.matrix_repairs == 1

    # With repair disabled, churn pays the full rebuild (E20 baseline).
    cold = VerificationEngine(backend="atom", matrix_repair=False)
    cold.compile(snapshot_from(base, version=1))
    cold.compile(snapshot_from(changed, version=2))
    assert cold.metrics.atom_matrix_builds == 2
    assert cold.metrics.matrix_repairs == 0


def test_seed_atoms_changes_artifact_key_not_staleness():
    base = {
        "s1": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(2),))],
        "s2": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(2),))],
        "s3": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(1),))],
    }
    engine = VerificationEngine(backend="atom")
    snapshot = snapshot_from(base)
    pair = engine.atom_artifacts(snapshot)
    assert pair is not None
    space, _matrix = pair
    # tp_dst=81 is not registered: refused before seeding...
    probe = HeaderSpace.single(Wildcard.from_fields(tp_dst=81))
    assert space.encode_space(probe) is None
    # ...after seeding, a *new* universe (fresh artifact key) serves it.
    engine.seed_atoms([Wildcard.from_fields(tp_dst=81)])
    seeded_space, _ = engine.atom_artifacts(snapshot)
    assert seeded_space is not space
    assert seeded_space.encode_space(probe) is not None


def test_wildcard_backend_builds_no_matrix():
    base = {
        "s1": [SnapshotRule(0, 5, Match(ip_dst=IPS[0]), (Output(2),))],
        "s2": [],
        "s3": [],
    }
    engine = VerificationEngine(backend="wildcard")
    engine.compile(snapshot_from(base))
    assert engine.metrics.atom_matrix_builds == 0
    assert engine.atom_artifacts(snapshot_from(base)) is None


def test_backend_flag_validation():
    with pytest.raises(ValueError):
        VerificationEngine(backend="quantum")
