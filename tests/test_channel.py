"""Unit tests for the authenticated control channel."""

import pytest

from repro.crypto.cipher import SecureChannelKeys
from repro.dataplane.simulator import Simulator
from repro.openflow.channel import ChannelError, ControlChannel
from repro.openflow.messages import EchoRequest, Hello


def make_channel(latency=0.001):
    sim = Simulator()
    keys = SecureChannelKeys.derive("ctl<->s1", b"secret")
    channel = ControlChannel("ctl", "s1", keys, sim, latency=latency)
    return sim, channel


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim, channel = make_channel(latency=0.5)
        inbox = []
        channel.switch_end.set_handler(inbox.append)
        channel.send_to_switch(Hello())
        sim.run_until(0.4)
        assert inbox == []
        sim.run_until(0.5)
        assert len(inbox) == 1 and isinstance(inbox[0], Hello)

    def test_bidirectional(self):
        sim, channel = make_channel()
        to_switch, to_controller = [], []
        channel.switch_end.set_handler(to_switch.append)
        channel.controller_end.set_handler(to_controller.append)
        channel.send_to_switch(Hello())
        channel.send_to_controller(EchoRequest(data=b"ping"))
        sim.run_until_idle()
        assert len(to_switch) == 1 and len(to_controller) == 1

    def test_in_order_delivery(self):
        sim, channel = make_channel()
        inbox = []
        channel.switch_end.set_handler(inbox.append)
        for i in range(5):
            channel.send_to_switch(EchoRequest(data=bytes([i])))
        sim.run_until_idle()
        assert [m.data for m in inbox] == [bytes([i]) for i in range(5)]

    def test_payload_roundtrips_through_encryption(self):
        sim, channel = make_channel()
        inbox = []
        channel.switch_end.set_handler(inbox.append)
        message = EchoRequest(data=b"\x00\x01\xff" * 100)
        channel.send_to_switch(message)
        sim.run_until_idle()
        assert inbox[0].data == message.data


class TestSecurity:
    def test_tampered_record_rejected(self):
        sim, channel = make_channel()
        keys = channel.keys
        ciphertext, tag = keys.protect(b"payload", 0)
        with pytest.raises(ValueError):
            keys.unprotect(ciphertext, bytes(32), 0)

    def test_closed_channel_refuses_send(self):
        _sim, channel = make_channel()
        channel.close()
        with pytest.raises(ChannelError):
            channel.send_to_switch(Hello())

    def test_close_drops_in_flight(self):
        sim, channel = make_channel(latency=1.0)
        inbox = []
        channel.switch_end.set_handler(inbox.append)
        channel.send_to_switch(Hello())
        channel.close()
        sim.run_until_idle()
        assert inbox == []


class TestAccounting:
    def test_counters(self):
        sim, channel = make_channel()
        channel.switch_end.set_handler(lambda m: None)
        channel.send_to_switch(Hello())
        channel.send_to_switch(Hello())
        sim.run_until_idle()
        assert channel.total_messages() == 2
        assert channel.total_bytes() > 0
        assert channel.controller_end.sent.messages == 2
        assert channel.switch_end.received.messages == 2
