"""Tests for the emulation-based verification backend (§IV-A2)."""

import pytest

from repro.attacks import BlackholeAttack, DiversionAttack, ExfiltrationAttack, JoinAttack
from repro.core.emulation import EmulationVerifier, ShadowNetwork
from repro.core.queries import ReachableDestinationsQuery, TrafficScope
from repro.dataplane.topologies import isp_topology, linear_topology
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


class TestShadowNetwork:
    def test_replays_rules(self, bed):
        snapshot = bed.service.snapshot()
        shadow = ShadowNetwork(snapshot)
        for name, switch in shadow.switches.items():
            assert switch.rule_count() == len(snapshot.rules[name])

    def test_probe_delivery_matches_policy(self, bed):
        snapshot = bed.service.snapshot()
        shadow = ShadowNetwork(snapshot)
        alice = bed.registrations["alice"]
        src, dst = alice.hosts[0], alice.hosts[1]
        from repro.netlib.addresses import IPv4Address, MacAddress
        from repro.netlib.packet import udp_packet

        probe = udp_packet(
            eth_src=MacAddress.from_host_index(1),
            eth_dst=MacAddress.from_host_index(0),
            ip_src=IPv4Address(src.ip),
            ip_dst=IPv4Address(dst.ip),
            sport=1,
            dport=2,
        )
        result = shadow.run_probe_round(src.access_point, [probe])
        assert dst.access_point in result.reached_ports()

    def test_reused_shadow_resets_meter_state_between_rounds(self):
        """A cached replica must answer like a fresh one (engine reuse).

        A tight meter passes exactly 3 of 5 probes per pristine round;
        without the per-round reset the second round would start from a
        drained token bucket and drop more.
        """
        from repro.core.snapshot import NetworkSnapshot, SnapshotMeter
        from repro.hsa.transfer import SnapshotRule
        from repro.netlib.addresses import IPv4Address, MacAddress
        from repro.netlib.packet import udp_packet
        from repro.openflow.actions import Meter, Output
        from repro.openflow.match import Match
        from repro.openflow.meters import MeterBand

        snapshot = NetworkSnapshot(
            version=1,
            taken_at=0.0,
            rules={
                "s1": (
                    SnapshotRule(
                        table_id=0,
                        priority=10,
                        match=Match.build(),
                        actions=(Meter(1), Output(2)),
                    ),
                )
            },
            meters=(
                SnapshotMeter(
                    switch="s1",
                    meter_id=1,
                    # burst 1 kb = 8000 bits; probes are 320 B = 2560 bits
                    band=MeterBand(rate_kbps=1, burst_kb=1),
                ),
            ),
            wiring={},
            edge_ports={"s1": frozenset([1, 2])},
            switch_ports={"s1": (1, 2)},
        )
        shadow = ShadowNetwork(snapshot)
        probes = [
            udp_packet(
                eth_src=MacAddress.from_host_index(1),
                eth_dst=MacAddress.from_host_index(0),
                ip_src=IPv4Address.parse("10.0.0.1"),
                ip_dst=IPv4Address.parse("10.0.0.2"),
                sport=1,
                dport=2,
                payload=("probe", i),
            )
            for i in range(5)
        ]
        first = shadow.run_probe_round(("s1", 1), probes)
        second = shadow.run_probe_round(("s1", 1), probes)
        assert len(first.arrivals[("s1", 2)]) == 3
        assert len(second.arrivals[("s1", 2)]) == 3

    def test_shadow_is_isolated_from_live_network(self, bed):
        """Probes in the shadow never reach real hosts."""
        snapshot = bed.service.snapshot()
        shadow = ShadowNetwork(snapshot)
        alice = bed.registrations["alice"]
        received_before = len(bed.network.host("h_fra1").received)
        verifier = EmulationVerifier(bed.registrations)
        verifier.reachable_destinations(alice, snapshot)
        assert len(bed.network.host("h_fra1").received) == received_before

    def test_controller_punts_counted(self, bed):
        snapshot = bed.service.snapshot()
        shadow = ShadowNetwork(snapshot)
        alice = bed.registrations["alice"]
        from repro.netlib.addresses import IPv4Address, MacAddress
        from repro.netlib.constants import RVAAS_MAGIC_PORT
        from repro.netlib.packet import udp_packet

        magic = udp_packet(
            eth_src=MacAddress.from_host_index(1),
            eth_dst=MacAddress.from_host_index(0),
            ip_src=IPv4Address(alice.hosts[0].ip),
            ip_dst=IPv4Address(0),
            sport=1,
            dport=RVAAS_MAGIC_PORT,
        )
        result = shadow.run_probe_round(alice.hosts[0].access_point, [magic])
        assert result.controller_copies == 1
        assert result.reached_ports() == frozenset()


class TestEmulationVerifier:
    def test_benign_matches_hsa(self, bed):
        snapshot = bed.service.snapshot()
        alice = bed.registrations["alice"]
        emulated = EmulationVerifier(bed.registrations).reachable_destinations(
            alice, snapshot
        )
        logical = bed.service.verifier.reachable_destinations(alice, snapshot)
        assert {e for e in emulated} == {
            e for e in logical.endpoints if e.port >= 0
        }

    @pytest.mark.parametrize(
        "attack",
        [
            JoinAttack("h_ber2", "h_fra1"),
            ExfiltrationAttack("h_fra1", "h_off1"),
            DiversionAttack("h_ber1", "h_fra1", "off"),
        ],
        ids=["join", "exfiltration", "diversion"],
    )
    def test_attacked_matches_hsa(self, bed, attack):
        bed.provider.compromise(attack)
        bed.run(0.5)
        snapshot = bed.service.snapshot()
        alice = bed.registrations["alice"]
        emulated = EmulationVerifier(bed.registrations).reachable_destinations(
            alice, snapshot
        )
        logical = bed.service.verifier.reachable_destinations(alice, snapshot)
        assert set(emulated) == {e for e in logical.endpoints if e.port >= 0}

    def test_can_reach_direction(self, bed):
        snapshot = bed.service.snapshot()
        alice = bed.registrations["alice"]
        bob = bed.registrations["bob"]
        verifier = EmulationVerifier(bed.registrations)
        fra_port = next(
            h.access_point for h in alice.hosts if h.name == "h_fra1"
        )
        assert verifier.can_reach(alice, snapshot, "h_ber1", fra_port)
        assert not verifier.can_reach(bob, snapshot, "h_ber2", fra_port)

    def test_blackhole_visible(self, bed):
        alice = bed.registrations["alice"]
        fra_port = next(h.access_point for h in alice.hosts if h.name == "h_fra1")
        verifier = EmulationVerifier(bed.registrations)
        assert verifier.can_reach(alice, bed.service.snapshot(), "h_ber1", fra_port)
        bed.provider.compromise(BlackholeAttack("h_ber1", "h_fra1"))
        bed.run(0.5)
        assert not verifier.can_reach(
            alice, bed.service.snapshot(), "h_ber1", fra_port
        )

    def test_scope_constrains_probes(self, bed):
        alice = bed.registrations["alice"]
        verifier = EmulationVerifier(bed.registrations)
        endpoints = verifier.reachable_destinations(
            alice, bed.service.snapshot(), scope=TrafficScope(tp_dst=5555)
        )
        assert endpoints  # pair routes are port-agnostic
        assert all(e.client == "alice" for e in endpoints)

    def test_unknown_host_rejected(self, bed):
        verifier = EmulationVerifier(bed.registrations)
        with pytest.raises(KeyError):
            verifier.can_reach(
                bed.registrations["alice"],
                bed.service.snapshot(),
                "h_nope",
                ("ber", 1),
            )


class TestDifferential:
    """Differential validation: emulation arrivals == HSA predictions.

    For a family of topologies and adversarial mutations, every endpoint
    HSA declares reachable must receive a probe in the shadow network,
    and every probe arrival must be predicted by HSA.  (Emulation probes
    cover all registered destination addresses, and the configs under
    test route on registered addresses, so the sampling is exhaustive
    here.)
    """

    @pytest.mark.parametrize("n_switches", [2, 4, 6])
    @pytest.mark.parametrize("isolate", [True, False])
    def test_backends_agree_on_linear(self, n_switches, isolate):
        bed = build_testbed(
            linear_topology(n_switches, hosts_per_switch=1, clients=["a", "b"]),
            isolate_clients=isolate,
            seed=n_switches,
        )
        snapshot = bed.service.snapshot()
        verifier = EmulationVerifier(bed.registrations)
        for client in bed.registrations:
            registration = bed.registrations[client]
            emulated = set(
                verifier.reachable_destinations(registration, snapshot)
            )
            logical = {
                e
                for e in bed.service.verifier.reachable_destinations(
                    registration, snapshot
                ).endpoints
                if e.port >= 0
            }
            assert emulated == logical, f"{client} on linear-{n_switches}"

    def test_backends_agree_under_random_attacks(self):
        import random

        rng = random.Random(99)
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=5
        )
        hosts = [h for h in bed.topology.hosts if bed.topology.hosts[h].client]
        for trial in range(3):
            src, dst = rng.sample(hosts, 2)
            bed.provider.compromise(JoinAttack(src, dst))
            bed.run(0.5)
            snapshot = bed.service.snapshot()
            verifier = EmulationVerifier(bed.registrations)
            for client, registration in bed.registrations.items():
                emulated = set(
                    verifier.reachable_destinations(registration, snapshot)
                )
                logical = {
                    e
                    for e in bed.service.verifier.reachable_destinations(
                        registration, snapshot
                    ).endpoints
                    if e.port >= 0
                }
                assert emulated == logical, f"trial {trial}, client {client}"
