"""Tests for configuration monitoring and snapshot history."""

import pytest

from repro.controlplane.controller import ControllerApp
from repro.controlplane.provider import ProviderController
from repro.core.history import SnapshotHistory
from repro.core.monitor import ConfigurationMonitor, MonitorMode
from repro.dataplane.network import Network
from repro.dataplane.topologies import linear_topology
from repro.openflow.actions import Output
from repro.openflow.match import Match


def build(mode=MonitorMode.HYBRID, mean_poll=5.0, randomize=True, seed=0):
    topo = linear_topology(3, hosts_per_switch=1, clients=["c"])
    net = Network(topo, seed=seed)
    provider = ProviderController()
    provider.attach(net)
    provider.deploy()
    watcher = ControllerApp("watcher")
    watcher.attach(net)
    monitor = ConfigurationMonitor(
        watcher,
        topo,
        mode=mode,
        mean_poll_interval=mean_poll,
        randomize_polls=randomize,
    )
    # Wire the watcher's monitor-update events into the monitor.
    watcher.on_monitor_update = monitor.handle_monitor_update  # type: ignore[assignment]
    watcher.on_packet_in = lambda sw, msg: monitor.handle_probe(sw, msg)  # type: ignore[assignment]
    # Probe interception (normally installed by the in-band tester).
    from repro.netlib.constants import ETH_TYPE_LLDP
    from repro.openflow.actions import ToController

    for switch in topo.switches:
        watcher.install_flow(
            switch,
            Match(eth_type=ETH_TYPE_LLDP),
            (ToController(),),
            priority=1001,
        )
    monitor.start()
    net.run(0.5)
    return topo, net, provider, watcher, monitor


class TestActiveMonitoring:
    def test_initial_poll_seeds_mirror(self):
        topo, net, provider, watcher, monitor = build(mode=MonitorMode.ACTIVE)
        snapshot = monitor.snapshot()
        assert snapshot.rule_count() == net.total_rules()

    def test_snapshot_matches_switch_state(self):
        topo, net, provider, watcher, monitor = build(mode=MonitorMode.ACTIVE)
        snapshot = monitor.snapshot()
        for switch in topo.switches:
            assert len(snapshot.rules[switch]) == net.switch(switch).rule_count()

    def test_periodic_polls_happen(self):
        topo, net, provider, watcher, monitor = build(
            mode=MonitorMode.ACTIVE, mean_poll=1.0, randomize=False
        )
        before = monitor.metrics.active_polls
        net.run(3.0)
        assert monitor.metrics.active_polls >= before + 2

    def test_random_polls_are_irregular(self):
        topo, net, provider, watcher, monitor = build(
            mode=MonitorMode.ACTIVE, mean_poll=0.5, randomize=True
        )
        net.run(5.0)
        times = monitor.poll_times
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(set(round(g, 6) for g in gaps)) > 1  # not all equal

    def test_poll_detects_post_deploy_change(self):
        topo, net, provider, watcher, monitor = build(
            mode=MonitorMode.ACTIVE, mean_poll=0.5
        )
        provider.install_flow(
            "s1", Match.build(tp_dst=4444), (Output(1),), priority=99
        )
        net.run(5.0)
        snapshot = monitor.snapshot()
        assert any(
            rule.priority == 99 for rule in snapshot.rules["s1"]
        )


class TestPassiveMonitoring:
    def test_updates_tracked_without_polling(self):
        topo, net, provider, watcher, monitor = build(mode=MonitorMode.PASSIVE)
        version_before = monitor.version
        provider.install_flow(
            "s2", Match.build(tp_dst=5555), (Output(1),), priority=77
        )
        net.run(0.1)
        assert monitor.version > version_before
        assert any(r.priority == 77 for r in monitor.current_rules("s2"))

    def test_removal_tracked(self):
        topo, net, provider, watcher, monitor = build(mode=MonitorMode.PASSIVE)
        provider.install_flow("s2", Match.build(tp_dst=5555), (Output(1),), priority=77)
        net.run(0.1)
        provider.remove_flow("s2", Match.build(tp_dst=5555), priority=77, strict=True)
        net.run(0.1)
        assert not any(r.priority == 77 for r in monitor.current_rules("s2"))

    def test_change_listener_fires(self):
        topo, net, provider, watcher, monitor = build(mode=MonitorMode.PASSIVE)
        changed = []
        monitor.on_change(changed.append)
        provider.install_flow("s1", Match.build(tp_dst=1), (Output(1),), priority=1)
        net.run(0.1)
        assert "s1" in changed


class TestTopologyProbing:
    def test_probes_confirm_wiring(self):
        topo, net, provider, watcher, monitor = build()
        monitor.probe_topology()
        net.run(0.5)
        missing, unexpected = monitor.verify_wiring()
        assert missing == set() and unexpected == set()

    def test_probe_counters(self):
        topo, net, provider, watcher, monitor = build()
        monitor.probe_topology()
        net.run(0.5)
        assert monitor.metrics.probes_sent == 4  # 2 links x 2 directions
        assert monitor.metrics.probes_received == 4

    def test_missing_link_detected(self):
        topo, net, provider, watcher, monitor = build()
        net.set_link_state("s1", "s2", up=False)
        net.run(0.1)
        monitor.probe_topology()
        net.run(0.5)
        missing, _unexpected = monitor.verify_wiring()
        assert missing  # the downed link's probes never arrived


class TestSnapshots:
    def test_content_hash_stable(self):
        topo, net, provider, watcher, monitor = build()
        a = monitor.snapshot()
        b = monitor.snapshot()
        assert a.content_hash() == b.content_hash()

    def test_content_hash_changes_on_rule_change(self):
        topo, net, provider, watcher, monitor = build()
        before = monitor.snapshot().content_hash()
        provider.install_flow("s1", Match.build(tp_dst=9), (Output(1),), priority=9)
        net.run(0.1)
        assert monitor.snapshot().content_hash() != before

    def test_diff(self):
        topo, net, provider, watcher, monitor = build()
        old = monitor.snapshot()
        provider.install_flow("s1", Match.build(tp_dst=9), (Output(1),), priority=9)
        net.run(0.1)
        new = monitor.snapshot()
        added, removed = new.diff(old)
        assert len(added) == 1 and not removed

    def test_snapshot_versions_monotone(self):
        topo, net, provider, watcher, monitor = build()
        v1 = monitor.snapshot().version
        provider.install_flow("s1", Match.build(tp_dst=9), (Output(1),), priority=9)
        net.run(0.1)
        assert monitor.snapshot().version > v1

    def test_network_tf_compiles(self):
        topo, net, provider, watcher, monitor = build()
        ntf = monitor.snapshot().network_tf()
        assert ntf.total_rules() == net.total_rules()

    def test_approximate_size(self):
        topo, net, provider, watcher, monitor = build()
        assert monitor.snapshot().approximate_size_bytes() > 0


class TestHistory:
    def make_snapshots(self, monitor, provider, net, count=3):
        snapshots = [monitor.snapshot()]
        for i in range(count - 1):
            provider.install_flow(
                "s1", Match.build(tp_dst=6000 + i), (Output(1),), priority=50 + i
            )
            net.run(0.1)
            snapshots.append(monitor.snapshot())
        return snapshots

    def test_record_and_length(self):
        topo, net, provider, watcher, monitor = build()
        history = SnapshotHistory()
        for snapshot in self.make_snapshots(monitor, provider, net):
            history.record(snapshot)
        assert len(history) == 3
        assert history.distinct_configurations() == 3

    def test_entry_at_time(self):
        topo, net, provider, watcher, monitor = build()
        history = SnapshotHistory()
        snapshots = self.make_snapshots(monitor, provider, net)
        for snapshot in snapshots:
            history.record(snapshot)
        entry = history.entry_at(snapshots[1].taken_at)
        assert entry is not None and entry.version == snapshots[1].version
        assert history.entry_at(-1.0) is None

    def test_transient_signature_witness(self):
        """The short-term-attack record: gone now, but seen forever."""
        topo, net, provider, watcher, monitor = build()
        history = SnapshotHistory()
        history.record(monitor.snapshot())
        provider.install_flow("s1", Match.build(tp_dst=6666), (Output(1),), priority=66)
        net.run(0.1)
        history.record(monitor.snapshot())
        provider.remove_flow("s1", Match.build(tp_dst=6666), priority=66, strict=True)
        net.run(0.1)
        history.record(monitor.snapshot())
        transients = history.transient_signatures()
        assert len(transients) == 1
        assert history.ever_seen(next(iter(transients)))

    def test_flapping_detection(self):
        topo, net, provider, watcher, monitor = build()
        history = SnapshotHistory()
        match = Match.build(tp_dst=6666)
        for _ in range(3):
            provider.install_flow("s1", match, (Output(1),), priority=66)
            net.run(0.1)
            history.record(monitor.snapshot())
            provider.remove_flow("s1", match, priority=66, strict=True)
            net.run(0.1)
            history.record(monitor.snapshot())
        reports = history.flapping(min_transitions=3)
        assert len(reports) == 1
        assert reports[0].transitions == 3
        assert reports[0].switch == "s1"

    def test_unexpected_signatures(self):
        topo, net, provider, watcher, monitor = build()
        history = SnapshotHistory()
        baseline = monitor.snapshot()
        history.record(baseline)
        provider.install_flow("s1", Match.build(tp_dst=7777), (Output(1),), priority=7)
        net.run(0.1)
        history.record(monitor.snapshot())
        unexpected = history.unexpected_signatures(baseline.rule_signatures())
        assert len(unexpected) == 1

    def test_bounded_entries(self):
        history = SnapshotHistory(max_entries=2)
        topo, net, provider, watcher, monitor = build()
        for snapshot in self.make_snapshots(monitor, provider, net, count=3):
            history.record(snapshot)
        assert len(history) == 2
        assert history.latest() is not None
