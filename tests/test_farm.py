"""The persistent compile farm (ISSUE 10): determinism, delta shipping,
crash recovery, and loud — never silent — degradation.

Four claims, each load-bearing for the E24 benchmark's validity:

* **Byte identity** — compiles, matrix builds, and serving batches on
  the process farm (any worker count) equal the serial loop exactly,
  under both engine backends.  Items are assigned round-robin by input
  index and merged positionally, so this is a structural property, not
  a scheduling accident.
* **Content-addressed shipping** — a churned snapshot ships only the
  changed switch's rules; unchanged parts are satisfied from the
  workers' caches and counted in ``parts_cached``, and a same-universe
  delta patches the worker mirrors (``mirror_reuses``) instead of
  recompiling the network.
* **Crash recovery** — a worker SIGKILLed mid-batch (or between
  batches) is respawned, its shard re-dispatched, and the batch result
  is byte-identical; ``worker_restarts`` counts every respawn.
* **Loud fallback** — an unpicklable context (or a payload that fails
  to unpickle on the worker) reruns the batch on threads with a
  :class:`~repro.hsa.parallel.PoolModeFallbackWarning` and a counter
  bump; the silent thread downgrade of the pre-farm code is gone.
"""

import os
import pickle
import threading
import time
import warnings

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import VerificationEngine
from repro.hsa.atoms import GLOBAL_ATOM_TABLE
from repro.hsa.farm import CompileFarm, FarmError, shared_farm
from repro.hsa.parallel import FanOutPool, PoolModeFallbackWarning
from repro.hsa.reachability import build_reachability_matrix
from repro.hsa.transfer import SnapshotRule
from repro.openflow.actions import Drop, Output
from repro.openflow.match import Match
from tests.test_atoms_differential import (
    EDGE_PORTS,
    IPS,
    SWITCH_PORTS,
    SWITCHES,
    WIRING,
    config_strategy,
    rule_strategy,
    snapshot_from,
)

POOLS = [(1, "thread"), (2, "thread"), (2, "process"), (4, "process")]


def assert_matrices_equal(left, right, context=""):
    assert left.ingresses() == right.ingresses(), context
    for ref in left.ingresses():
        a, b = left.row(ref), right.row(ref)
        assert a.zones == b.zones, (context, ref)
        assert a.reach == b.reach, (context, ref)
        assert a.traversed == b.traversed, (context, ref)


def _double(context, item):
    return (context, item * 2)


def _slow_double(context, item):
    time.sleep(0.05)
    return item * 2


def _boom(context, item):
    if item == context:
        raise ValueError(f"item {item}")
    return item


# ----------------------------------------------------------------------
# Byte identity: farm == serial for compiles, matrices, and sweeps
# ----------------------------------------------------------------------


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    config=config_strategy(),
    churn=rule_strategy(),
    backend=st.sampled_from(["wildcard", "atom"]),
)
def test_farm_engines_byte_identical_to_serial(config, churn, backend):
    """Every pool shape answers exactly like the serial engine —
    cold compile, then a one-switch churn (repair path on atoms)."""
    churned = {name: list(rules) for name, rules in config.items()}
    churned[SWITCHES[1]] = list(churned[SWITCHES[1]]) + [churn]
    snapshots = [
        snapshot_from(config, version=1),
        snapshot_from(churned, version=2),
    ]
    serial = VerificationEngine(workers=1, backend=backend)
    pooled = [
        VerificationEngine(workers=w, pool_mode=m, backend=backend)
        for w, m in POOLS
    ]
    try:
        for snapshot in snapshots:
            reference_ntf = serial.compile(snapshot)
            reference = serial.atom_artifacts(snapshot)
            for engine, (w, m) in zip(pooled, POOLS):
                ntf = engine.compile(snapshot)
                assert set(ntf.transfer_functions) == set(
                    reference_ntf.transfer_functions
                ), (w, m)
                if backend != "atom":
                    continue
                artifacts = engine.atom_artifacts(snapshot)
                assert (artifacts is None) == (reference is None), (w, m)
                if reference is not None:
                    assert artifacts[0].signature == reference[0].signature
                    assert_matrices_equal(
                        artifacts[1], reference[1], context=(w, m)
                    )
                assert engine.metrics.pool_fallbacks == 0, (w, m)
    finally:
        for engine in [serial, *pooled]:
            engine.close()


def test_build_matrix_honors_process_mode():
    """The reachability.py silent process→thread downgrade is gone:
    a process-mode matrix build runs (and matches the serial build)."""
    rules = {
        "s1": (
            SnapshotRule(
                table_id=0,
                priority=10,
                match=Match(ip_dst=IPS[0].value),
                actions=(Output(2),),
            ),
            SnapshotRule(table_id=0, priority=1, match=Match(), actions=(Output(1),)),
        ),
        "s2": (
            SnapshotRule(table_id=0, priority=1, match=Match(), actions=(Output(2),)),
        ),
        "s3": (
            SnapshotRule(table_id=0, priority=1, match=Match(), actions=(Output(1),)),
        ),
    }
    snapshot = snapshot_from({k: list(v) for k, v in rules.items()})
    network_tf = snapshot.network_tf()
    space = GLOBAL_ATOM_TABLE.space_for(list(network_tf.atom_constraints()))
    assert space is not None
    serial = build_reachability_matrix(network_tf, space, workers=1)
    with warnings.catch_warnings():
        warnings.simplefilter("error", PoolModeFallbackWarning)
        pooled = build_reachability_matrix(
            network_tf, space, workers=2, pool_mode="process"
        )
    assert_matrices_equal(pooled, serial)


def test_generic_map_matches_serial_across_batches():
    pool = FanOutPool(2, "process")
    try:
        for batch in ([1, 2, 3, 4, 5], [7, 8], list(range(20))):
            assert pool.map(_double, "ctx", batch) == [
                ("ctx", item * 2) for item in batch
            ]
        assert pool.process_fallbacks == 0
        # The shipped (fn, context) part stays warm across batches.
        assert pool.farm_counters["parts_cached"] >= 2
    finally:
        pool.close()


def test_exception_propagates_like_serial():
    """First failing input's exception, exactly as in the serial loop."""
    pool = FanOutPool(2, "process")
    try:
        with pytest.raises(ValueError, match="item 3"):
            pool.map(_boom, 3, [0, 1, 2, 3, 4, 3])
    finally:
        pool.close()


# ----------------------------------------------------------------------
# Content-addressed shipping: churn ships only the delta
# ----------------------------------------------------------------------


def test_churn_ships_only_changed_switch():
    base = {
        name: [
            SnapshotRule(
                table_id=0,
                priority=10,
                match=Match(ip_dst=IPS[0].value),
                actions=(Output(2),),
            ),
            SnapshotRule(
                table_id=0, priority=1, match=Match(), actions=(Drop(),)
            ),
        ]
        for name in SWITCHES
    }
    snap1 = snapshot_from(base, version=1)
    churned = {name: list(rules) for name, rules in base.items()}
    # Re-add an existing match at a new priority: the switch's content
    # hash changes but the atom constraint set (and hence the space
    # signature) does not — the purest 1-FlowMod delta.
    churned["s2"] = list(churned["s2"]) + [
        SnapshotRule(
            table_id=0,
            priority=20,
            match=Match(ip_dst=IPS[0].value),
            actions=(Drop(),),
        )
    ]
    snap2 = snapshot_from(churned, version=2)
    engine = VerificationEngine(workers=2, pool_mode="process", backend="atom")
    serial = VerificationEngine(workers=1, backend="atom")
    try:
        engine.compile(snap1)
        serial.compile(snap1)
        cold_bytes = engine.metrics.farm_bytes_shipped
        cold_parts = engine.metrics.farm_parts_shipped
        assert cold_parts > 0 and cold_bytes > 0

        engine.compile(snap2)
        serial.compile(snap2)
        delta_bytes = engine.metrics.farm_bytes_shipped - cold_bytes
        delta_parts = engine.metrics.farm_parts_shipped - cold_parts
        # Only s2's rules are new content; every other part (the other
        # switches' rules, the space, the topology) is already on the
        # workers.  At most one tf part per worker lane ships.
        assert 0 < delta_parts <= 2, engine.metrics.snapshot_counters()
        assert delta_bytes < cold_bytes / 2
        assert engine.metrics.farm_parts_cached > 0
        # Same universe ⇒ the workers patched their predecessor mirror
        # instead of assembling a new network from scratch.
        assert engine.metrics.farm_mirror_reuses + engine.metrics.farm_warm_hits > 0
        assert engine.metrics.matrix_repairs >= 1
        assert engine.metrics.pool_fallbacks == 0
        # And the result is still exactly the serial engine's.
        assert_matrices_equal(
            engine.atom_artifacts(snap2)[1], serial.atom_artifacts(snap2)[1]
        )
    finally:
        engine.close()
        serial.close()


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------


def test_worker_killed_mid_batch_is_respawned():
    farm = CompileFarm(2)
    pool = FanOutPool(2, "process", farm=farm)
    try:
        # Warm the farm so a victim process exists, then murder it
        # while the next batch is executing (tasks sleep long enough
        # for the kill to land mid-shard).
        assert pool.map(_double, "w", [1, 2, 3]) == [("w", 2), ("w", 4), ("w", 6)]
        victim = farm._workers[0].process

        def assassin():
            time.sleep(0.02)
            victim.kill()

        killer = threading.Thread(target=assassin)
        killer.start()
        result = pool.map(_slow_double, None, list(range(8)))
        killer.join()
        assert result == [item * 2 for item in range(8)]
        assert farm.metrics.worker_restarts >= 1
    finally:
        pool.close()
        farm.close()


def test_worker_killed_between_batches_reships_parts():
    farm = CompileFarm(2)
    pool = FanOutPool(2, "process", farm=farm)
    try:
        pool.map(_double, "ctx", [1, 2, 3, 4])
        shipped = pool.farm_counters["parts_shipped"]
        for worker in farm._workers:
            worker.process.kill()
            worker.process.join()
        pool.map(_double, "ctx", [1, 2, 3, 4])
        assert farm.metrics.worker_restarts >= 2
        # Fresh workers hold nothing: the context part ships again.
        assert pool.farm_counters["parts_shipped"] > shipped
    finally:
        pool.close()
        farm.close()


def test_restart_limit_gives_up_loudly():
    farm = CompileFarm(1, restart_limit=0)
    try:
        farm.close()
        with pytest.raises(FarmError):
            farm.run_generic(("ctx", "x"), pickle.dumps((_double, None)), [1])
    finally:
        farm.close()


# ----------------------------------------------------------------------
# Loud fallback (the satellite that kills the silent downgrade)
# ----------------------------------------------------------------------


def test_unpicklable_context_falls_back_loudly():
    pool = FanOutPool(2, "process")
    try:
        with pytest.warns(PoolModeFallbackWarning):
            result = pool.map(lambda ctx, item: item + 1, None, [1, 2, 3])
        assert result == [2, 3, 4]
        assert pool.process_fallbacks == 1
        # Warned once per pool; the counter keeps counting.
        with warnings.catch_warnings():
            warnings.simplefilter("error", PoolModeFallbackWarning)
            assert pool.map(lambda ctx, item: item - 1, None, [1, 2]) == [0, 1]
        assert pool.process_fallbacks == 2
    finally:
        pool.close()


def test_fallback_still_raises_task_errors():
    pool = FanOutPool(2, "process")
    try:
        with pytest.warns(PoolModeFallbackWarning):
            with pytest.raises(ValueError, match="item 1"):
                fail_on = 1

                def local_boom(ctx, item):
                    if item == fail_on:
                        raise ValueError(f"item {item}")
                    return item

                pool.map(local_boom, None, [0, 1, 2])
    finally:
        pool.close()


# ----------------------------------------------------------------------
# Lifecycle: persistent executors, idempotent close
# ----------------------------------------------------------------------


def test_pool_close_is_idempotent_and_degrades_to_serial():
    pool = FanOutPool(4, "process")
    assert pool.map(_double, "a", [1, 2]) == [("a", 2), ("a", 4)]
    pool.close()
    pool.close()
    assert pool.closed
    # A closed pool still answers — inline, serially.
    assert pool.map(_double, "b", [3, 4]) == [("b", 6), ("b", 8)]
    assert not pool.is_process


def test_shared_farm_is_per_width_and_survives_pool_close():
    pool_a = FanOutPool(2, "process")
    pool_b = FanOutPool(2, "process")
    try:
        pool_a.map(_double, "x", [1, 2])
        pool_b.map(_double, "x", [3, 4])
        assert pool_a.farm() is pool_b.farm()
        assert shared_farm(2) is pool_a.farm()
        pool_a.close()
        assert not shared_farm(2).closed
        assert pool_b.map(_double, "x", [5, 6]) == [("x", 10), ("x", 12)]
    finally:
        pool_b.close()


def test_engine_close_is_idempotent():
    engine = VerificationEngine(workers=2, pool_mode="process", backend="atom")
    snapshot = snapshot_from(
        {name: [] for name in SWITCHES}
    )
    engine.compile(snapshot)
    engine.close()
    engine.close()
    # Still serves after close (serial path).
    assert engine.compile(snapshot) is not None


# ----------------------------------------------------------------------
# Serving batches: scheduler shards byte-identical under the farm
# ----------------------------------------------------------------------


def _pure_answer(client, query, snapshot):
    return (client, repr(query), snapshot.version)


def test_serving_batches_byte_identical_across_pool_shapes():
    from repro.serving import QueryScheduler, ServingConfig
    from repro.core.queries import IsolationQuery, ReachableDestinationsQuery

    snapshot = snapshot_from({name: [] for name in SWITCHES})
    requests = [
        ("alice", IsolationQuery()),
        ("bob", ReachableDestinationsQuery()),
        ("alice", ReachableDestinationsQuery()),
        ("bob", IsolationQuery()),
        ("carol", IsolationQuery()),
    ]

    def run(workers, mode):
        scheduler = QueryScheduler(
            answer_fn=_pure_answer,
            snapshot_fn=lambda: snapshot,
            config=ServingConfig(shard_workers=workers, pool_mode=mode),
        )
        outcomes = []
        for client, query in requests:
            scheduler.submit(
                client,
                query,
                on_done=lambda _p, outcome: outcomes.append(outcome.answer),
            )
        scheduler.flush()
        scheduler.close()
        return outcomes, scheduler.metrics

    reference, _ = run(1, "thread")
    for workers, mode in POOLS[1:]:
        outcomes, metrics = run(workers, mode)
        assert outcomes == reference, (workers, mode)
        # A picklable answer_fn means the farm really executed the
        # shards — no loud fallback, and tasks flowed through it.
        assert metrics.pool_fallbacks == 0, (workers, mode)
        if mode == "process":
            assert metrics.farm_tasks > 0, (workers, mode)
