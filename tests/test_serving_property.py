"""Property test (ISSUE 7 satellite): coalesced serving is lossless.

For random snapshot churn and random interleaved multi-client query
streams, every response the :class:`QueryScheduler` serves — whether
computed, coalesced within a batch, or replayed from the cross-batch
answer cache — must be byte-identical to answering that request
individually against the same snapshot.  Runs against both engine
backends; the serving verifier additionally runs with the row cache
enabled, so the property also pins row-cache correctness under churn
(content-hash-keyed rows must never leak across snapshots).

Answer dataclasses are frozen, so ``==`` compares the full signed
payload content.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import VerificationEngine
from repro.core.queries import (
    GeoLocationQuery,
    IsolationQuery,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
)
from repro.core.verifier import LogicalVerifier
from repro.serving import QueryScheduler, ServingConfig
from tests.test_atoms_differential import (
    REGISTRATIONS,
    config_strategy,
    scope_strategy,
    snapshot_from,
)


def query_strategy():
    return st.one_of(
        st.builds(
            IsolationQuery,
            scope=scope_strategy(),
            authenticate=st.booleans(),
        ),
        st.builds(
            ReachableDestinationsQuery,
            scope=scope_strategy(),
            authenticate=st.booleans(),
        ),
        st.builds(GeoLocationQuery, scope=scope_strategy()),
        st.builds(ReachingSourcesQuery, scope=scope_strategy()),
    )


def request_stream():
    return st.lists(
        st.tuples(st.sampled_from(sorted(REGISTRATIONS)), query_strategy()),
        min_size=1,
        max_size=8,
    )


@pytest.mark.parametrize("backend", ["wildcard", "atom"])
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    configs=st.lists(config_strategy(), min_size=1, max_size=3),
    requests=request_stream(),
)
def test_coalesced_serving_byte_identical_under_churn(
    backend, configs, requests
):
    serving_verifier = LogicalVerifier(
        REGISTRATIONS, engine=VerificationEngine(backend=backend)
    )
    serving_verifier.enable_row_cache()
    reference = LogicalVerifier(
        REGISTRATIONS, engine=VerificationEngine(backend=backend)
    )

    state = {"snapshot": snapshot_from(configs[0], version=1)}
    scheduler = QueryScheduler(
        answer_fn=lambda client, query, snapshot: serving_verifier.answer(
            query, REGISTRATIONS[client], snapshot
        ),
        snapshot_fn=lambda: state["snapshot"],
        config=ServingConfig(),
    )

    outcomes = {}

    def on_done(pending, outcome):
        outcomes[pending.nonce] = outcome

    nonce = 0
    # Each config is one churn phase: the same request stream replays
    # against every snapshot, so cross-batch cache entries from the
    # previous phase must be bypassed (their content hash changed) and
    # within-phase repeats must coalesce or hit the cache.
    for version, config in enumerate(configs, start=1):
        state["snapshot"] = snapshot_from(config, version=version)
        phase = []
        for client, query in requests:
            scheduler.submit(client, query, nonce=nonce, on_done=on_done)
            phase.append((nonce, client, query, state["snapshot"]))
            nonce += 1
        scheduler.flush()
        for n, client, query, snapshot in phase:
            individually = reference.answer(
                query, REGISTRATIONS[client], snapshot
            )
            assert outcomes[n].answer == individually, (
                f"{backend}: request {n} ({client}, {query!r}) diverged "
                f"from the individually-served answer"
            )
