"""Unit tests for flow entries and priority-ordered tables."""

import pytest

from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.packet import Packet
from repro.openflow.actions import Drop, Output
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match


def packet(dst="10.0.0.2", dport=2000):
    return Packet(
        eth_src=MacAddress.from_host_index(1),
        eth_dst=MacAddress.from_host_index(2),
        ip_src=IPv4Address.parse("10.0.0.1"),
        ip_dst=IPv4Address.parse(dst),
        tp_src=1000,
        tp_dst=dport,
    )


def entry(match=None, priority=0, actions=(Output(1),), **kwargs):
    return FlowEntry(
        match=match or Match.any(),
        actions=tuple(actions),
        priority=priority,
        **kwargs,
    )


class TestLookup:
    def test_empty_table_misses(self):
        assert FlowTable().lookup(packet(), 1) is None

    def test_highest_priority_wins(self):
        table = FlowTable()
        low = entry(priority=1, actions=(Output(1),))
        high = entry(priority=10, actions=(Output(2),))
        table.add(low)
        table.add(high)
        assert table.lookup(packet(), 1) is high

    def test_priority_tie_first_installed_wins(self):
        table = FlowTable()
        first = entry(priority=5, match=Match.build(tp_dst=2000))
        second = entry(priority=5, match=Match.build(ip_dst="10.0.0.2"))
        table.add(first)
        table.add(second)
        assert table.lookup(packet(), 1) is first

    def test_non_matching_entries_skipped(self):
        table = FlowTable()
        table.add(entry(priority=10, match=Match.build(tp_dst=9999)))
        table.add(entry(priority=1, match=Match.any()))
        assert table.lookup(packet(), 1).priority == 1


class TestMutation:
    def test_add_replaces_same_match_and_priority(self):
        table = FlowTable()
        table.add(entry(priority=5, actions=(Output(1),)))
        table.add(entry(priority=5, actions=(Output(2),)))
        assert len(table) == 1
        assert table.lookup(packet(), 1).actions == (Output(2),)

    def test_remove_non_strict_subset_semantics(self):
        table = FlowTable()
        table.add(entry(match=Match.build(ip_dst="10.0.0.2", tp_dst=80)))
        table.add(entry(match=Match.build(ip_dst="10.0.0.9")))
        removed = table.remove(Match.build(ip_dst="10.0.0.0/24"))
        assert len(removed) == 2
        assert len(table) == 0

    def test_remove_strict_requires_exact(self):
        table = FlowTable()
        table.add(entry(match=Match.build(ip_dst="10.0.0.2"), priority=5))
        assert not table.remove(
            Match.build(ip_dst="10.0.0.0/24"), priority=5, strict=True
        )
        assert table.remove(
            Match.build(ip_dst="10.0.0.2"), priority=5, strict=True
        )

    def test_remove_by_cookie(self):
        table = FlowTable()
        table.add(entry(cookie=1))
        table.add(entry(match=Match.build(tp_dst=80), cookie=2))
        removed = table.remove(Match.any(), cookie=2)
        assert len(removed) == 1 and removed[0].cookie == 2

    def test_clear(self):
        table = FlowTable()
        table.add(entry())
        table.add(entry(match=Match.build(tp_dst=80)))
        table.clear()
        assert len(table) == 0


class TestTimeouts:
    def test_hard_timeout(self):
        table = FlowTable()
        table.add(entry(hard_timeout=5.0, installed_at=0.0))
        assert not table.expire(now=4.9)
        assert table.expire(now=5.0)
        assert len(table) == 0

    def test_idle_timeout_resets_on_use(self):
        table = FlowTable()
        flow = entry(idle_timeout=2.0, installed_at=0.0)
        table.add(flow)
        flow.account(packet(), now=1.5)
        assert not table.expire(now=3.0)  # last used 1.5 + 2.0 = 3.5
        assert table.expire(now=3.5)

    def test_zero_timeouts_never_expire(self):
        table = FlowTable()
        table.add(entry())
        assert not table.expire(now=1e9)


class TestObservers:
    def test_add_and_remove_events(self):
        table = FlowTable()
        events = []
        table.subscribe(lambda change: events.append((change.kind, change.reason)))
        flow = entry(hard_timeout=1.0)
        table.add(flow)
        table.expire(now=2.0)
        assert events == [("added", ""), ("removed", "timeout")]

    def test_replace_notifies_removed_then_added(self):
        table = FlowTable()
        events = []
        table.subscribe(lambda change: events.append(change.kind))
        table.add(entry(priority=3, actions=(Output(1),)))
        table.add(entry(priority=3, actions=(Output(2),)))  # real change
        assert events == ["added", "removed", "added"]

    def test_identical_readd_is_silent_noop(self):
        """Re-asserting an identical rule (e.g. by a second controller)
        must neither reset counters nor emit change events."""
        table = FlowTable()
        events = []
        table.subscribe(lambda change: events.append(change.kind))
        table.add(entry(priority=3, actions=(Output(1),)))
        first = next(iter(table.entries()))
        first.packet_count = 7
        table.add(entry(priority=3, actions=(Output(1),)))
        assert events == ["added"]
        assert next(iter(table.entries())).packet_count == 7


class TestCountersAndSignature:
    def test_account_updates_counters(self):
        flow = entry()
        flow.account(packet(), now=1.0)
        flow.account(packet(), now=2.0)
        assert flow.packet_count == 2
        assert flow.byte_count > 0
        assert flow.last_used_at == 2.0

    def test_signature_ignores_counters(self):
        a = entry(priority=5)
        b = entry(priority=5)
        a.account(packet(), now=1.0)
        assert a.signature() == b.signature()

    def test_table_signature_order_insensitive(self):
        t1, t2 = FlowTable(), FlowTable()
        e1 = Match.build(tp_dst=80)
        e2 = Match.build(tp_dst=81)
        t1.add(entry(match=e1))
        t1.add(entry(match=e2))
        t2.add(entry(match=e2))
        t2.add(entry(match=e1))
        assert t1.signature() == t2.signature()

    def test_describe_mentions_priority(self):
        assert "prio=7" in entry(priority=7).describe()
