"""Unit and property tests for the ternary wildcard algebra.

The property tests validate the algebra against its point semantics: a
wildcard denotes a set of concrete headers, so every set operation must
agree with membership of sampled points.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hsa.layout import ALL_ONES, HEADER_BITS, field_slice
from repro.hsa.wildcard import Wildcard, enumerate_bits
from repro.netlib.addresses import IPv4Address, IPv4Network, MacAddress
from repro.openflow.match import Match


# Strategy: wildcards built from a random mask and value (value ⊆ mask).
@st.composite
def wildcards(draw):
    # Constrain randomness to the low 64 bits plus a few high bits so
    # intersections are non-trivial but examples stay readable.
    mask = draw(st.integers(min_value=0, max_value=(1 << 64) - 1))
    value = draw(st.integers(min_value=0, max_value=(1 << 64) - 1)) & mask
    return Wildcard(value=value, mask=mask)


@st.composite
def points(draw):
    return draw(st.integers(min_value=0, max_value=(1 << 64) - 1))


class TestConstruction:
    def test_all_contains_everything(self):
        assert Wildcard.all().contains_point(0)
        assert Wildcard.all().contains_point(ALL_ONES)

    def test_point_contains_only_itself(self):
        w = Wildcard.point(12345)
        assert w.contains_point(12345)
        assert not w.contains_point(12346)

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Wildcard(value=1, mask=0)

    def test_mask_outside_header_rejected(self):
        with pytest.raises(ValueError):
            Wildcard(value=0, mask=1 << HEADER_BITS)

    def test_from_fields(self):
        w = Wildcard.from_fields(tp_dst=80)
        slice_ = field_slice("tp_dst")
        assert w.mask == slice_.mask
        assert slice_.unpack(w.value) == 80

    def test_from_match_exact_ip(self):
        match = Match.build(ip_dst="10.0.0.1")
        w = Wildcard.from_match(match)
        value, mask = w.field_constraint("ip_dst")
        assert value == IPv4Address.parse("10.0.0.1").value
        assert mask == (1 << 32) - 1

    def test_from_match_prefix(self):
        match = Match.build(ip_dst="10.0.0.0/8")
        w = Wildcard.from_match(match)
        value, mask = w.field_constraint("ip_dst")
        assert mask == 0xFF000000
        assert value == 10 << 24

    def test_from_match_ignores_in_port(self):
        assert Wildcard.from_match(Match(in_port=3)) == Wildcard.all()

    def test_from_match_mac(self):
        match = Match.build(eth_dst="02:00:00:00:00:05")
        w = Wildcard.from_match(match)
        value, mask = w.field_constraint("eth_dst")
        assert value == MacAddress.parse("02:00:00:00:00:05").value


class TestOperations:
    def test_intersect_conflicting_is_none(self):
        a = Wildcard.from_fields(tp_dst=80)
        b = Wildcard.from_fields(tp_dst=81)
        assert a.intersect(b) is None

    def test_intersect_orthogonal(self):
        a = Wildcard.from_fields(tp_dst=80)
        b = Wildcard.from_fields(ip_proto=17)
        joined = a.intersect(b)
        assert joined is not None
        assert joined.field_constraint("tp_dst")[0] == 80
        assert joined.field_constraint("ip_proto")[0] == 17

    def test_subset(self):
        narrow = Wildcard.from_fields(tp_dst=80, ip_proto=17)
        wide = Wildcard.from_fields(tp_dst=80)
        assert narrow.is_subset_of(wide)
        assert not wide.is_subset_of(narrow)
        assert wide.is_subset_of(Wildcard.all())

    def test_subtract_disjoint_returns_self(self):
        a = Wildcard.from_fields(tp_dst=80)
        b = Wildcard.from_fields(tp_dst=81)
        assert a.subtract(b) == [a]

    def test_subtract_superset_returns_empty(self):
        a = Wildcard.from_fields(tp_dst=80)
        assert a.subtract(Wildcard.all()) == []

    def test_subtract_pieces_are_disjoint(self):
        a = Wildcard.all()
        b = Wildcard.from_fields(tp_dst=80)
        pieces = a.subtract(b)
        assert len(pieces) == 16  # one per tp_dst bit
        for i, piece_a in enumerate(pieces):
            for piece_b in pieces[i + 1 :]:
                assert piece_a.intersect(piece_b) is None

    def test_rewrite_field(self):
        w = Wildcard.from_fields(tp_dst=80)
        rewritten = w.rewrite_field(field_slice("tp_dst"), 443)
        assert rewritten.field_constraint("tp_dst")[0] == 443

    def test_rewrite_fixes_previously_free_field(self):
        rewritten = Wildcard.all().rewrite_field(field_slice("vlan_id"), 7)
        value, mask = rewritten.field_constraint("vlan_id")
        assert value == 7 and mask == (1 << 12) - 1

    def test_size_log2(self):
        assert Wildcard.all().size_log2() == HEADER_BITS
        assert Wildcard.point(0).size_log2() == 0

    def test_sample_within(self):
        rng = random.Random(0)
        w = Wildcard.from_fields(tp_dst=80, ip_proto=17)
        for _ in range(20):
            assert w.contains_point(w.sample(rng))

    def test_describe(self):
        text = Wildcard.from_fields(tp_dst=80).describe()
        assert "tp_dst=0x50" in text
        assert Wildcard.all().describe() == "Wildcard(*)"

    def test_enumerate_bits(self):
        assert list(enumerate_bits(0b1010)) == [0b10, 0b1000]


class TestPointSemantics:
    """Property tests: the algebra agrees with point membership."""

    @settings(max_examples=200)
    @given(wildcards(), wildcards(), points())
    def test_intersection_semantics(self, a, b, p):
        joined = a.intersect(b)
        in_both = a.contains_point(p) and b.contains_point(p)
        if joined is None:
            assert not in_both
        else:
            assert joined.contains_point(p) == in_both

    @settings(max_examples=200)
    @given(wildcards(), wildcards(), points())
    def test_subtraction_semantics(self, a, b, p):
        pieces = a.subtract(b)
        in_difference = a.contains_point(p) and not b.contains_point(p)
        assert any(piece.contains_point(p) for piece in pieces) == in_difference

    @settings(max_examples=200)
    @given(wildcards(), wildcards())
    def test_subset_semantics_on_samples(self, a, b):
        rng = random.Random(0)
        if a.is_subset_of(b):
            for _ in range(10):
                assert b.contains_point(a.sample(rng))
        else:
            # Not a subset: subtraction must leave something behind.
            assert a.subtract(b) != []

    @settings(max_examples=200)
    @given(wildcards(), wildcards())
    def test_subtract_pieces_inside_a_outside_b(self, a, b):
        rng = random.Random(1)
        for piece in a.subtract(b):
            sample = piece.sample(rng)
            assert a.contains_point(sample)
            assert not b.contains_point(sample)

    @settings(max_examples=100)
    @given(wildcards())
    def test_intersect_self_identity(self, a):
        assert a.intersect(a) == a

    @settings(max_examples=100)
    @given(wildcards())
    def test_subtract_self_empty(self, a):
        assert a.subtract(a) == []

    @settings(max_examples=100)
    @given(wildcards(), wildcards())
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)
