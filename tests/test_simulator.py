"""Unit tests for the discrete-event simulator."""

import pytest

from repro.dataplane.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("low"), priority=5)
        sim.schedule(1.0, lambda: order.append("high"), priority=1)
        sim.run_until_idle()
        assert order == ["high", "low"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run_until_idle()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("x"))
        event.cancel()
        sim.run_until_idle()
        assert seen == []

    def test_pending_events_ignores_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events() == 1


class TestRunControl:
    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_run_until_does_not_execute_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append("late"))
        sim.run_until(4.0)
        assert seen == []
        sim.run_until(5.0)
        assert seen == ["late"]

    def test_run_duration_is_relative(self):
        sim = Simulator()
        sim.run(3.0)
        sim.run(2.0)
        assert sim.now == 5.0

    def test_run_until_idle_guards_against_runaway(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(RuntimeError):
            sim.run_until_idle(max_time=100.0)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_executed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run_until_idle()
        assert sim.events_executed == 2


class TestDeterminism:
    def test_rng_is_seeded(self):
        a, b = Simulator(seed=9), Simulator(seed=9)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        assert Simulator(seed=1).rng.random() != Simulator(seed=2).rng.random()
