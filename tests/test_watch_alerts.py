"""Tests for proactive invariant watching and pushed violation notices."""

import pytest

from repro.attacks import BlackholeAttack, JoinAttack
from repro.core.protocol import SealedNotice, ViolationNotice
from repro.crypto.cipher import HybridCiphertext
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )
    bed.service.watch_isolation("alice")
    return bed


class TestWatchAlerts:
    def test_violation_pushes_notice(self, bed):
        alerts = []
        bed.clients["alice"].on_notice(alerts.append)
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        assert len(alerts) == 1
        notice = alerts[0]
        assert notice.invariant == "isolation"
        assert "h_ber2" in notice.details
        assert bed.service.notices_pushed == 1

    def test_no_alert_on_benign_changes(self, bed):
        from repro.openflow.actions import Output
        from repro.openflow.match import Match

        alerts = []
        bed.clients["alice"].on_notice(alerts.append)
        # A harmless provider change (unused low-priority rule).
        bed.provider.install_flow(
            "ber", Match.build(tp_dst=4444), (Output(3),), priority=3
        )
        bed.run(0.5)
        assert alerts == []

    def test_single_alert_per_violation_episode(self, bed):
        """The verdict edge (isolated -> violated) alerts once, not per
        FlowMod of the attack."""
        alerts = []
        bed.clients["alice"].on_notice(alerts.append)
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        bed.provider.compromise(JoinAttack("h_ams1", "h_fra1"))
        bed.run(0.5)
        # Still a single episode: the verdict never returned to isolated.
        assert len(alerts) == 1

    def test_realerts_after_recovery(self, bed):
        alerts = []
        bed.clients["alice"].on_notice(alerts.append)
        attack = JoinAttack("h_ber2", "h_fra1")
        bed.provider.compromise(attack)
        bed.run(0.5)
        bed.provider.retreat(attack)
        bed.run(0.5)
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        assert len(alerts) == 2

    def test_unwatched_client_not_notified(self, bed):
        bob_alerts = []
        bed.clients["bob"].on_notice(bob_alerts.append)
        bed.provider.compromise(BlackholeAttack("h_ber1", "h_fra1"))
        bed.run(0.5)
        assert bob_alerts == []

    def test_unknown_client_rejected(self, bed):
        with pytest.raises(KeyError):
            bed.service.watch_isolation("mallory")

    def test_forged_notice_ignored(self, bed):
        client = bed.clients["alice"]
        fake = SealedNotice(
            ciphertext=HybridCiphertext(wrapped_key=1, nonce=b"n" * 12, body=b"x"),
            signature=99,
        )
        from repro.netlib.addresses import IPv4Address, MacAddress
        from repro.netlib.constants import RVAAS_MAGIC_PORT
        from repro.netlib.packet import udp_packet

        client.host.deliver(
            udp_packet(
                eth_src=MacAddress.from_host_index(9),
                eth_dst=MacAddress.from_host_index(8),
                ip_src=IPv4Address(1),
                ip_dst=IPv4Address(2),
                sport=RVAAS_MAGIC_PORT,
                dport=RVAAS_MAGIC_PORT,
                payload=fake,
            )
        )
        assert client.notices == []

    def test_unchanged_snapshot_skips_reverification(self, bed):
        """A watch round against a byte-identical configuration is one
        hash comparison, not a re-answered isolation query per client."""
        bed.run(0.5)
        bed.service._run_watch_check()  # ensure a verified baseline exists
        skipped = bed.service.watch_checks_skipped
        metrics = bed.service.engine.metrics
        queries = metrics.reach_hits + metrics.reach_misses
        bed.service._run_watch_check()
        assert bed.service.watch_checks_skipped == skipped + 1
        # The skipped round ran zero propagation queries.
        assert metrics.reach_hits + metrics.reach_misses == queries

    def test_missing_verdict_forces_full_check(self, bed):
        """An unchanged content hash never skips a client that has no
        recorded verdict (subscription records one immediately; this
        guards the coalesced path if that invariant ever weakens)."""
        bed.run(0.5)
        bed.service._run_watch_check()
        bed.service.watch_isolation("bob")
        del bed.service._watch_verdicts["bob"]
        skipped = bed.service.watch_checks_skipped
        bed.service._run_watch_check()
        assert bed.service.watch_checks_skipped == skipped
        assert "bob" in bed.service._watch_verdicts

    def test_skip_never_suppresses_alerts(self, bed):
        """Changed configuration after a run of skipped rounds still
        re-verifies and alerts."""
        alerts = []
        bed.clients["alice"].on_notice(alerts.append)
        bed.run(0.5)
        bed.service._run_watch_check()
        bed.service._run_watch_check()
        assert bed.service.watch_checks_skipped >= 1
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        assert len(alerts) == 1

    def test_alert_latency_sub_snapshot_interval(self, bed):
        """The alert arrives at event-batch latency, far below any
        polling interval a client could reasonably use."""
        alerts = []
        bed.clients["alice"].on_notice(alerts.append)
        t0 = bed.network.sim.now
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        assert alerts
        assert alerts[0].raised_at - t0 < 0.05
