"""Differential tests: the fast HSA kernel vs the naive reference oracle.

The fast kernel (indexed classifiers, trusted constructors, iterative
worklist, shadow-skip subtraction) and the frozen pre-rewrite kernel in
:mod:`repro.hsa.reference` must produce the same verification answers on
every input: same reachable zones in the same order, same drops, same
loops.  Random rule sets over a three-switch chain exercise shadowing,
rewrites, multi-table pipelines, floods, and forwarding loops.

A second family of properties pins determinism under parallel fan-out:
``sources_reaching`` and ``detect_all_loops`` must return byte-identical
answers (equal fingerprints, not merely semantically equal spaces) for
any worker count.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.snapshot import NetworkSnapshot
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.reachability import ReachabilityAnalyzer
from repro.hsa.reference import (
    ReferenceReachabilityAnalyzer,
    reference_network_tf,
)
from repro.hsa.transfer import SnapshotRule
from repro.hsa.wildcard import Wildcard
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import (
    Drop,
    Flood,
    GotoTable,
    Output,
    PopVlan,
    PushVlan,
    SetField,
)
from repro.openflow.match import Match

# Three switches in a chain; ports: 1 = edge, 2 = toward next, 3 = toward prev.
SWITCHES = ("s1", "s2", "s3")
WIRING = {
    ("s1", 2): ("s2", 3),
    ("s2", 3): ("s1", 2),
    ("s2", 2): ("s3", 3),
    ("s3", 3): ("s2", 2),
}
EDGE_PORTS = {name: frozenset([1]) for name in SWITCHES}
SWITCH_PORTS = {name: (1, 2, 3) for name in SWITCHES}

IPS = [IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")]
TP_PORTS = [80, 81]


def match_strategy():
    return st.builds(
        Match,
        in_port=st.sampled_from([None, None, 1, 2, 3]),
        ip_dst=st.sampled_from([None, *IPS]),
        tp_dst=st.sampled_from([None, *TP_PORTS]),
        vlan_id=st.sampled_from([None, 0, 5]),
    )


def action_strategy(allow_goto: bool):
    options = [
        st.builds(Output, port=st.sampled_from([1, 2, 3])),
        st.just(Drop()),
        st.just(Flood()),
        st.builds(
            SetField, field=st.just("tp_dst"), value=st.sampled_from(TP_PORTS)
        ),
        st.builds(PushVlan, vlan_id=st.just(5)),
        st.just(PopVlan()),
    ]
    if allow_goto:
        # Goto only ever targets a strictly later table, like a real
        # OpenFlow pipeline — a self-goto diverges on both kernels.
        options.append(st.just(GotoTable(1)))
    return st.one_of(options)


def rule_strategy():
    def build(table, match, actions, priority):
        return SnapshotRule(
            table_id=table, priority=priority, match=match, actions=tuple(actions)
        )

    return st.sampled_from([0, 0, 0, 1]).flatmap(
        lambda table: st.builds(
            build,
            st.just(table),
            match_strategy(),
            st.lists(action_strategy(allow_goto=table == 0), min_size=1, max_size=3),
            st.integers(min_value=0, max_value=3),
        )
    )


def config_strategy():
    return st.fixed_dictionaries(
        {name: st.lists(rule_strategy(), max_size=6) for name in SWITCHES}
    )


def space_strategy():
    """Random injected spaces: one or two wildcard pieces over the fields."""

    def build(dst, dport, vlan):
        fields = {}
        if dst is not None:
            fields["ip_dst"] = dst.value
        if dport is not None:
            fields["tp_dst"] = dport
        if vlan is not None:
            fields["vlan_id"] = vlan
        return HeaderSpace.single(
            Wildcard.from_fields(**fields) if fields else Wildcard.all()
        )

    return st.builds(
        build,
        st.sampled_from([None, *IPS]),
        st.sampled_from([None, *TP_PORTS]),
        st.sampled_from([None, 0, 5]),
    )


def snapshot_from(config) -> NetworkSnapshot:
    return NetworkSnapshot(
        version=1,
        taken_at=0.0,
        rules={name: tuple(rules) for name, rules in config.items()},
        meters=(),
        wiring=WIRING,
        edge_ports=EDGE_PORTS,
        switch_ports=SWITCH_PORTS,
    )


def assert_same_result(fast, ref):
    """Fast and reference results must agree zone-for-zone, in order."""
    assert [(z.kind, z.switch, z.port) for z in fast.zones] == [
        (z.kind, z.switch, z.port) for z in ref.zones
    ]
    for zf, zr in zip(fast.zones, ref.zones):
        assert zf.space == zr.space, (
            f"zone space diverged at {zf.switch}:{zf.port}: "
            f"{zf.space} != {zr.space}"
        )
    assert [(l.switch, l.port, l.cycle) for l in fast.loops] == [
        (l.switch, l.port, l.cycle) for l in ref.loops
    ]
    for lf, lr in zip(fast.loops, ref.loops):
        assert lf.space == lr.space
    assert [(d.switch, d.port, d.depth) for d in fast.drops] == [
        (d.switch, d.port, d.depth) for d in ref.drops
    ]
    for df, dr in zip(fast.drops, ref.drops):
        assert df.space == dr.space
    assert fast.expansions == ref.expansions
    assert fast.switches_traversed == ref.switches_traversed
    assert fast.links_traversed == ref.links_traversed


@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=config_strategy(), space=space_strategy())
def test_fast_kernel_matches_reference(config, space):
    ntf = snapshot_from(config).network_tf()
    ref_ntf = reference_network_tf(ntf)
    fast = ReachabilityAnalyzer(ntf, collect_drops=True)
    ref = ReferenceReachabilityAnalyzer(ref_ntf, collect_drops=True)
    for switch in SWITCHES:
        assert_same_result(
            fast.analyze(switch, 1, space), ref.analyze(switch, 1, space)
        )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=config_strategy(), space=space_strategy())
def test_parallel_fan_out_is_byte_identical(config, space):
    """workers=1 and workers=4 must return byte-identical sweep answers."""
    ntf = snapshot_from(config).network_tf()
    serial = ReachabilityAnalyzer(ntf, workers=1)
    pooled = ReachabilityAnalyzer(ntf, workers=4)

    def loop_key(reports):
        return [
            (l.switch, l.port, l.cycle, l.space.fingerprint()) for l in reports
        ]

    assert loop_key(serial.detect_all_loops(space)) == loop_key(
        pooled.detect_all_loops(space)
    )

    def source_key(sources):
        return [(ref, hs.fingerprint()) for ref, hs in sources.items()]

    assert source_key(
        serial.sources_reaching("s3", 1, space)
    ) == source_key(pooled.sources_reaching("s3", 1, space))


def test_reference_matches_on_realistic_routed_chain():
    """One deterministic end-to-end case with real routed tables."""
    dst = IPs = IPv4Address.parse("10.0.0.1")
    rules = {
        "s1": (
            SnapshotRule(0, 10, Match(in_port=1), (GotoTable(1),)),
            SnapshotRule(1, 5, Match(ip_dst=dst), (Output(2),)),
            SnapshotRule(1, 0, Match(), (Drop(),)),
        ),
        "s2": (
            SnapshotRule(0, 10, Match(in_port=3), (GotoTable(1),)),
            SnapshotRule(1, 5, Match(ip_dst=dst), (Output(2),)),
        ),
        "s3": (
            SnapshotRule(0, 10, Match(in_port=3), (GotoTable(1),)),
            SnapshotRule(1, 5, Match(ip_dst=dst), (Output(1),)),
        ),
    }
    snapshot = NetworkSnapshot(
        version=1,
        taken_at=0.0,
        rules=rules,
        meters=(),
        wiring=WIRING,
        edge_ports=EDGE_PORTS,
        switch_ports=SWITCH_PORTS,
    )
    ntf = snapshot.network_tf()
    space = HeaderSpace.single(Wildcard.from_fields(ip_dst=dst.value))
    fast = ReachabilityAnalyzer(ntf, collect_drops=True).analyze("s1", 1, space)
    ref = ReferenceReachabilityAnalyzer(
        reference_network_tf(ntf), collect_drops=True
    ).analyze("s1", 1, space)
    assert_same_result(fast, ref)
    assert fast.reaches("s3", 1)
