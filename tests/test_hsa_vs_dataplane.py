"""Differential property test: HSA predictions vs the real switch pipeline.

For randomly generated rule sets on a small chain network, every
concrete packet must behave exactly as the header-space analysis
predicts: it arrives at an edge port iff the propagated header space
covers its header vector at that port.

This is the strongest correctness evidence for the verification engine:
the two implementations (symbolic transfer functions vs the imperative
match-action pipeline) share no code path for matching semantics beyond
the Match class itself.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.emulation import ShadowNetwork
from repro.core.snapshot import NetworkSnapshot
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.layout import pack_headers
from repro.hsa.reachability import ReachabilityAnalyzer
from repro.hsa.transfer import SnapshotRule
from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.packet import udp_packet
from repro.openflow.actions import Drop, Output, PopVlan, PushVlan, SetField
from repro.openflow.match import Match

# Three switches in a chain; ports: 1 = edge, 2 = toward next, 3 = toward prev.
SWITCHES = ("s1", "s2", "s3")
WIRING = {
    ("s1", 2): ("s2", 3),
    ("s2", 3): ("s1", 2),
    ("s2", 2): ("s3", 3),
    ("s3", 3): ("s2", 2),
}
EDGE_PORTS = {name: frozenset([1]) for name in SWITCHES}
SWITCH_PORTS = {name: (1, 2, 3) for name in SWITCHES}

IPS = [IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2")]
PORTS_FIELD = [80, 81]


def match_strategy():
    return st.builds(
        Match,
        in_port=st.sampled_from([None, None, 1, 2, 3]),
        ip_dst=st.sampled_from([None, *IPS]),
        tp_dst=st.sampled_from([None, *PORTS_FIELD]),
        vlan_id=st.sampled_from([None, 0, 5]),
    )


def action_strategy():
    return st.one_of(
        st.builds(Output, port=st.sampled_from([1, 2, 3])),
        st.just(Drop()),
        st.builds(SetField, field=st.just("tp_dst"), value=st.sampled_from(PORTS_FIELD)),
        st.builds(PushVlan, vlan_id=st.just(5)),
        st.just(PopVlan()),
    )


def rule_strategy():
    return st.builds(
        lambda match, actions, priority: SnapshotRule(
            table_id=0, priority=priority, match=match, actions=tuple(actions)
        ),
        match_strategy(),
        st.lists(action_strategy(), min_size=1, max_size=3),
        st.integers(min_value=0, max_value=3),
    )


def config_strategy():
    return st.fixed_dictionaries(
        {name: st.lists(rule_strategy(), max_size=5) for name in SWITCHES}
    )


def packet_strategy():
    return st.builds(
        lambda dst, dport, vlan: udp_packet(
            eth_src=MacAddress.from_host_index(1),
            eth_dst=MacAddress.from_host_index(2),
            ip_src=IPv4Address.parse("10.0.0.9"),
            ip_dst=dst,
            sport=1000,
            dport=dport,
            vlan_id=vlan,
        ),
        st.sampled_from(IPS),
        st.sampled_from(PORTS_FIELD),
        st.sampled_from([0, 5]),
    )


def snapshot_from(config) -> NetworkSnapshot:
    return NetworkSnapshot(
        version=1,
        taken_at=0.0,
        rules={name: tuple(rules) for name, rules in config.items()},
        meters=(),
        wiring=WIRING,
        edge_ports=EDGE_PORTS,
        switch_ports=SWITCH_PORTS,
    )


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=config_strategy(), packet=packet_strategy())
def test_pipeline_agrees_with_hsa(config, packet):
    snapshot = snapshot_from(config)
    analyzer = ReachabilityAnalyzer(snapshot.network_tf())
    point = HeaderSpace.point(pack_headers(packet))
    prediction = analyzer.analyze("s1", 1, point)

    if prediction.loops:
        # The random rules form a forwarding loop for this packet; the
        # data plane would circulate it forever.  HSA's loop report IS
        # the verdict here; nothing further to compare.
        return

    shadow = ShadowNetwork(snapshot)
    try:
        result = shadow.run_probe_round(("s1", 1), [packet])
    except RuntimeError:
        pytest.fail("data plane looped although HSA reported no loop")

    arrived = result.reached_ports()
    predicted = prediction.edge_port_refs()
    assert arrived == predicted, (
        f"packet {packet.describe()} vlan={packet.vlan_id}: "
        f"data plane delivered to {sorted(arrived)}, HSA predicted "
        f"{sorted(predicted)}"
    )


@settings(max_examples=60, deadline=None)
@given(config=config_strategy(), packet=packet_strategy())
def test_rewritten_headers_agree(config, packet):
    """Where both deliver, the *rewritten* header must also agree."""
    snapshot = snapshot_from(config)
    analyzer = ReachabilityAnalyzer(snapshot.network_tf())
    point = HeaderSpace.point(pack_headers(packet))
    prediction = analyzer.analyze("s1", 1, point)
    if prediction.loops:
        return
    shadow = ShadowNetwork(snapshot)
    result = shadow.run_probe_round(("s1", 1), [packet])
    for port_ref, packets in result.arrivals.items():
        zones = [
            z for z in prediction.edge_zones() if z.port_ref == port_ref
        ]
        assert zones
        for delivered in packets:
            vector = pack_headers(delivered)
            assert any(z.space.contains_point(vector) for z in zones), (
                f"delivered header at {port_ref} not in predicted space: "
                f"{delivered.describe()} vlan={delivered.vlan_id}"
            )
