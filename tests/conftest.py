"""Shared fixtures.

Testbeds are expensive (key generation + deployment), so the common ones
are session-scoped; tests that mutate state (arm attacks, send traffic)
build their own via the factory fixtures.
"""

from __future__ import annotations

import random

import pytest

from repro.dataplane.topologies import isp_topology, linear_topology
from repro.testbed import Testbed, build_testbed


@pytest.fixture(scope="session")
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture(scope="session")
def isp_bed_readonly() -> Testbed:
    """A settled isolated ISP deployment — treat as read-only."""
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


@pytest.fixture()
def isp_bed() -> Testbed:
    """A fresh isolated ISP deployment per test (mutable)."""
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


@pytest.fixture()
def linear_bed() -> Testbed:
    """A small linear network with flat (any-to-any) routing."""
    return build_testbed(
        linear_topology(3, hosts_per_switch=1, clients=["alice", "bob"]),
        isolate_clients=False,
        seed=7,
    )
