"""Chaos tests: deterministic fault injection and recovery (ISSUE 3).

The acceptance bar: with a null plan a run is byte-identical to a run
with no injector at all; with a lossy plan the service's mirror
reconverges to the live switch state once the faults stop; and every
chaos run is exactly reproducible from its seeds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import SecureChannelKeys
from repro.dataplane.simulator import Simulator
from repro.dataplane.topologies import linear_topology
from repro.faults import (
    ChannelFaultSpec,
    ChannelFaultState,
    FaultMetrics,
    FaultPlan,
    PortFlap,
    SwitchRestart,
    actual_switch_rules,
    ground_truth_snapshot,
    mirror_divergence,
    mirror_synced,
)
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import EchoRequest, Hello
from repro.testbed import build_testbed


def topo():
    return linear_topology(3, hosts_per_switch=1, clients=["c"])


def make_channel(latency=0.001):
    sim = Simulator()
    keys = SecureChannelKeys.derive("ctl<->s1", b"secret")
    return sim, ControlChannel("ctl", "s1", keys, sim, latency=latency)


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            ChannelFaultSpec(drop=1.5)
        with pytest.raises(ValueError):
            ChannelFaultSpec(delay=-0.1)
        with pytest.raises(ValueError):
            ChannelFaultSpec(max_extra_delay=-1.0)

    def test_null_detection(self):
        assert ChannelFaultSpec().is_null()
        assert not ChannelFaultSpec(drop=0.1).is_null()
        assert FaultPlan().is_null()
        assert not FaultPlan(restarts=(SwitchRestart(at=1.0, switch="s1"),)).is_null()
        assert not FaultPlan.uniform(duplicate=0.2).is_null()

    def test_overrides_win(self):
        special = ChannelFaultSpec(drop=0.9)
        plan = FaultPlan(
            default=ChannelFaultSpec(drop=0.1), overrides={"s2": special}
        )
        assert plan.spec_for("s1").drop == 0.1
        assert plan.spec_for("s2") is special


class TestChannelFaultState:
    def _state(self, spec, **kw):
        import random

        return ChannelFaultState(
            spec, random.Random(0), FaultMetrics(), clock=lambda: 1.0, **kw
        )

    def test_certain_drop(self):
        state = self._state(ChannelFaultSpec(drop=1.0))
        assert state("to_switch", 0.001) == ()
        assert state.metrics.records_dropped == 1

    def test_certain_duplicate(self):
        state = self._state(ChannelFaultSpec(duplicate=1.0))
        delays = state("to_switch", 0.001)
        assert len(delays) == 2
        assert state.metrics.records_duplicated == 1

    def test_inactive_outside_window(self):
        state = self._state(ChannelFaultSpec(drop=1.0), active_from=5.0)
        assert state("to_switch", 0.001) == (0.001,)  # clock says 1.0
        state2 = self._state(ChannelFaultSpec(drop=1.0), active_until=0.5)
        assert state2("to_switch", 0.001) == (0.001,)

    def test_disabled(self):
        state = self._state(ChannelFaultSpec(drop=1.0))
        state.enabled = False
        assert state("to_switch", 0.001) == (0.001,)


# ----------------------------------------------------------------------
# Channel loss tolerance
# ----------------------------------------------------------------------


class TestChannelTolerance:
    def test_gap_is_tolerated_not_fatal(self):
        sim, channel = make_channel()
        inbox = []
        channel.switch_end.set_handler(inbox.append)
        drop_next = [True]

        def filt(direction, latency):
            if drop_next[0]:
                drop_next[0] = False
                return ()
            return (latency,)

        channel.fault_filter = filt
        channel.send_to_switch(EchoRequest(data=b"lost"))
        channel.send_to_switch(EchoRequest(data=b"kept"))
        sim.run_until_idle()
        assert [m.data for m in inbox] == [b"kept"]
        assert channel.impairments.gaps_observed == 1

    def test_duplicate_discarded(self):
        sim, channel = make_channel()
        inbox = []
        channel.switch_end.set_handler(inbox.append)
        channel.fault_filter = lambda d, latency: (latency, latency * 2)
        channel.send_to_switch(Hello())
        sim.run_until_idle()
        assert len(inbox) == 1
        assert channel.impairments.duplicates_discarded == 1

    def test_reordered_records_both_delivered(self):
        sim, channel = make_channel()
        inbox = []
        channel.switch_end.set_handler(inbox.append)
        hold_first = [True]

        def filt(direction, latency):
            if hold_first[0]:
                hold_first[0] = False
                return (latency * 10,)
            return (latency,)

        channel.fault_filter = filt
        channel.send_to_switch(EchoRequest(data=b"first"))
        channel.send_to_switch(EchoRequest(data=b"second"))
        sim.run_until_idle()
        assert sorted(m.data for m in inbox) == [b"first", b"second"]

    def test_offline_black_holes_both_directions(self):
        sim, channel = make_channel()
        inbox = []
        channel.switch_end.set_handler(inbox.append)
        channel.controller_end.set_handler(inbox.append)
        channel.online = False
        channel.send_to_switch(Hello())
        channel.send_to_controller(Hello())
        sim.run_until_idle()
        assert inbox == []
        assert channel.impairments.outage_drops == 2
        channel.online = True
        channel.send_to_switch(Hello())
        sim.run_until_idle()
        assert len(inbox) == 1


# ----------------------------------------------------------------------
# Whole-testbed chaos runs
# ----------------------------------------------------------------------


def _run_pair(plan_a, plan_b, seed=7, duration=10.0, **kw):
    tb_a = build_testbed(topo(), seed=seed, fault_plan=plan_a, **kw)
    tb_b = build_testbed(topo(), seed=seed, fault_plan=plan_b, **kw)
    tb_a.run(duration)
    tb_b.run(duration)
    return tb_a, tb_b


class TestDeterminism:
    def test_null_plan_byte_identical_to_no_plan(self):
        tb_a, tb_b = _run_pair(None, FaultPlan())
        assert (
            tb_a.service.monitor.poll_times == tb_b.service.monitor.poll_times
        )
        assert (
            tb_a.service.control_message_count()
            == tb_b.service.control_message_count()
        )
        snap_a = tb_a.service.snapshot()
        snap_b = tb_b.service.snapshot()
        assert snap_a.rules == snap_b.rules
        assert snap_a.content_hash() == snap_b.content_hash()

    def test_identical_chaos_runs_are_identical(self):
        plan = FaultPlan.uniform(drop=0.3, delay=0.3, duplicate=0.1, seed=3)
        tb_a, tb_b = _run_pair(plan, plan)
        ia, ib = tb_a.fault_injector.metrics, tb_b.fault_injector.metrics
        assert ia == ib
        assert ia.records_dropped > 0
        assert (
            tb_a.service.monitor.poll_times == tb_b.service.monitor.poll_times
        )
        assert (
            tb_a.service.monitor.metrics.poll_timeouts
            == tb_b.service.monitor.metrics.poll_timeouts
        )

    def test_different_fault_seeds_diverge(self):
        tb_a, tb_b = _run_pair(
            FaultPlan.uniform(drop=0.3, seed=1),
            FaultPlan.uniform(drop=0.3, seed=2),
        )
        ia, ib = tb_a.fault_injector.metrics, tb_b.fault_injector.metrics
        assert ia != ib

    @settings(max_examples=8, deadline=None)
    @given(
        fault_seed=st.integers(min_value=0, max_value=2**16),
        drop=st.floats(min_value=0.0, max_value=0.4),
        delay=st.floats(min_value=0.0, max_value=0.3),
        duplicate=st.floats(min_value=0.0, max_value=0.2),
    )
    def test_identical_seeds_are_byte_identical(
        self, fault_seed, drop, delay, duplicate
    ):
        """The chaos layer's reproducibility contract, property-style:
        any plan replayed under the same seed yields byte-identical
        injector metrics, simulator state, and final mirror."""
        plan = FaultPlan.uniform(
            drop=drop, delay=delay, duplicate=duplicate, seed=fault_seed
        )
        tb_a, tb_b = _run_pair(plan, plan, duration=6.0)
        assert tb_a.fault_injector.metrics == tb_b.fault_injector.metrics
        sim_a, sim_b = tb_a.network.sim, tb_b.network.sim
        assert sim_a.now == sim_b.now
        assert sim_a.rng.getstate() == sim_b.rng.getstate()
        assert (
            tb_a.service.monitor.poll_times == tb_b.service.monitor.poll_times
        )
        snap_a, snap_b = tb_a.service.snapshot(), tb_b.service.snapshot()
        assert snap_a.rules == snap_b.rules
        assert snap_a.content_hash() == snap_b.content_hash()


class TestRecovery:
    def test_lossy_channels_reconverge_after_faults_stop(self):
        plan = FaultPlan.uniform(drop=0.25, delay=0.3, seed=5, active_until=8.0)
        tb = build_testbed(
            topo(), seed=7, fault_plan=plan, mean_poll_interval=1.0
        )
        tb.run(16.0)
        assert tb.fault_injector.metrics.records_dropped > 0
        assert tb.service.monitor.metrics.poll_timeouts > 0
        assert mirror_synced(tb.service.monitor, tb.network), mirror_divergence(
            tb.service.monitor, tb.network
        )

    def test_switch_restart_triggers_resync_and_resubscribe(self):
        plan = FaultPlan(
            restarts=(SwitchRestart(at=3.0, switch="s2", outage=2.0),)
        )
        tb = build_testbed(
            topo(), seed=7, fault_plan=plan, mean_poll_interval=0.5
        )
        tb.run(10.0)
        assert tb.network.switches["s2"].restarts == 1
        metrics = tb.service.monitor.metrics
        assert metrics.poll_timeouts > 0
        assert metrics.resyncs >= 1
        assert mirror_synced(tb.service.monitor, tb.network)
        # The resync resubscribed the flow monitor, so passive updates
        # from s2 flow again after the restart wiped its subscriptions.
        from repro.openflow.match import Match

        before = metrics.passive_updates
        tb.provider.install_flow("s2", Match(), (), priority=1)
        tb.run(1.0)
        assert metrics.passive_updates > before

    def test_lost_interception_install_repaired_by_poll(self):
        # Every record to/from s1 is dropped while the deployment comes
        # up, so RVaaS's own punt rules never reach the switch — and a
        # FlowMod lost in transit never raises a "removed" event for
        # self-protection to see.  The poll mirror exposes the gap and
        # the service re-asserts its rules, or in-band queries from the
        # client behind s1 would be dead forever.
        plan = FaultPlan(
            overrides={"s1": ChannelFaultSpec(drop=1.0)},
            active_until=0.5,
        )
        tb = build_testbed(
            topo(), seed=7, fault_plan=plan, mean_poll_interval=0.5
        )
        tb.run(5.0)
        assert tb.service.interception_repairs >= 1
        from repro.core.inband import RVAAS_COOKIE

        cookies = {
            entry.cookie
            for table in tb.network.switches["s1"].tables
            for entry in table.entries()
        }
        assert RVAAS_COOKIE in cookies
        from repro.core.queries import IsolationQuery

        handle = tb.ask("c", IsolationQuery(authenticate=False), max_wait=10.0)
        assert handle.response is not None

    def test_port_flap_fires_and_recovers(self):
        plan = FaultPlan(flaps=(PortFlap(at=2.0, switch_a="s1", switch_b="s2"),))
        tb = build_testbed(topo(), seed=7, fault_plan=plan)
        tb.run(5.0)
        assert tb.fault_injector.metrics.flaps_fired == 1
        # Link is back up: queries through s1-s2 still answered.
        from repro.core.queries import IsolationQuery

        handle = tb.ask("c", IsolationQuery(authenticate=False), max_wait=10.0)
        assert handle.response is not None

    def test_deactivate_stops_impairments(self):
        plan = FaultPlan.uniform(drop=1.0, seed=1)
        tb = build_testbed(
            topo(), seed=7, fault_plan=plan, mean_poll_interval=1.0, settle=False
        )
        tb.fault_injector.deactivate()
        before = tb.fault_injector.metrics.records_dropped
        tb.run(3.0)
        assert tb.fault_injector.metrics.records_dropped == before
        assert mirror_synced(tb.service.monitor, tb.network)


# ----------------------------------------------------------------------
# Convergence helpers
# ----------------------------------------------------------------------


class TestConvergenceHelpers:
    def test_synced_mirror_reports_no_divergence(self):
        tb = build_testbed(topo(), seed=7)
        tb.run(2.0)
        assert actual_switch_rules(tb.network)
        assert mirror_divergence(tb.service.monitor, tb.network) == {}
        assert mirror_synced(tb.service.monitor, tb.network)

    def test_tampered_mirror_detected(self):
        tb = build_testbed(topo(), seed=7)
        tb.run(2.0)
        monitor = tb.service.monitor
        # Forcibly forget one switch's rules: divergence must show up
        # as "missing" entries for that switch.
        victim = next(iter(monitor._rules))
        count = len(monitor._rules[victim])
        assert count > 0
        monitor._rules[victim] = {}
        divergence = mirror_divergence(monitor, tb.network)
        assert divergence == {victim: (count, 0)}

    def test_ground_truth_snapshot_matches_converged_mirror(self):
        tb = build_testbed(topo(), seed=7)
        tb.run(2.0)
        truth = ground_truth_snapshot(tb.service.monitor, tb.network)
        mirror = tb.service.snapshot()
        assert truth.content_hash() == mirror.content_hash()
        # And it is a fully verifiable snapshot: the verifier accepts it.
        from repro.core.queries import IsolationQuery

        registration = tb.registrations["c"]
        a = tb.service.verifier.answer(
            IsolationQuery(authenticate=False), registration, truth
        )
        b = tb.service.verifier.answer(
            IsolationQuery(authenticate=False), registration, mirror
        )
        assert a.isolated == b.isolated
