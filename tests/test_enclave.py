"""Unit tests for the SGX-style attestation model."""

import random

import pytest

from repro.crypto.enclave import (
    AttestationError,
    AttestationVerifier,
    Enclave,
    Measurement,
    make_attestation_root,
)
from repro.crypto.keys import generate_keypair


@pytest.fixture(scope="module")
def root():
    return make_attestation_root(random.Random(11))


class TestMeasurement:
    def test_same_code_same_measurement(self):
        assert Measurement.of_code("app-1.0") == Measurement.of_code("app-1.0")

    def test_different_code_different_measurement(self):
        assert Measurement.of_code("app-1.0") != Measurement.of_code("app-1.1")


class TestQuotes:
    def test_genuine_quote_verifies(self, root):
        key, verifier = root
        enclave = Enclave("rvaas-1.0", key)
        quote = enclave.quote("report-data")
        verifier.verify_quote(quote, Measurement.of_code("rvaas-1.0"))

    def test_wrong_measurement_rejected(self, root):
        key, verifier = root
        enclave = Enclave("evil-1.0", key)
        quote = enclave.quote("report-data")
        with pytest.raises(AttestationError, match="measurement mismatch"):
            verifier.verify_quote(quote, Measurement.of_code("rvaas-1.0"))

    def test_fake_attestation_key_rejected(self, root):
        _key, verifier = root
        fake_key = generate_keypair("fake-root", rng=random.Random(12))
        enclave = Enclave("rvaas-1.0", fake_key)
        quote = enclave.quote("report-data")
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify_quote(quote, Measurement.of_code("rvaas-1.0"))

    def test_tampered_report_data_rejected(self, root):
        from dataclasses import replace

        key, verifier = root
        enclave = Enclave("rvaas-1.0", key)
        quote = replace(enclave.quote("honest"), report_data="tampered")
        with pytest.raises(AttestationError):
            verifier.verify_quote(quote, Measurement.of_code("rvaas-1.0"))

    def test_enclave_run_executes(self, root):
        key, _verifier = root
        enclave = Enclave("rvaas-1.0", key)
        assert enclave.run(lambda a, b: a + b, 2, 3) == 5


class TestServiceAttestation:
    def test_setup_and_provider_acceptance(self, root):
        from repro.core.attestation import (
            provider_accepts,
            setup_attested_service,
        )

        key, verifier = root
        service = setup_attested_service(key, random.Random(77))
        assert provider_accepts(service, verifier)

    def test_fake_service_rejected_by_provider(self, root):
        from repro.core.attestation import provider_accepts, setup_attested_service

        key, verifier = root
        service = setup_attested_service(
            key, random.Random(77), code_identity="trojaned-rvaas"
        )
        assert not provider_accepts(service, verifier)

    def test_client_verifies_key_binding(self, root):
        from repro.core.attestation import (
            expected_measurement,
            setup_attested_service,
        )
        from repro.core.client import AttestationFailure, RVaaSClient

        key, verifier = root
        service = setup_attested_service(key, random.Random(78))
        RVaaSClient.verify_service(
            service.quote,
            service.service_keypair.public,
            expected_measurement(),
            verifier,
        )
        # A different key under the same (valid) quote must fail.
        imposter = generate_keypair("imposter", rng=random.Random(79))
        with pytest.raises(AttestationFailure):
            RVaaSClient.verify_service(
                service.quote, imposter.public, expected_measurement(), verifier
            )
