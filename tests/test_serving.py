"""The multi-tenant serving tier (ISSUE 7).

Covers the scheduler in isolation (admission control, token buckets,
coalescing, the cross-batch answer cache, sharded execution, the
stale-but-honest fast path), the clock-safety satellite (monotonic
clamp, no negative staleness), the verifier row cache, and the tier
end-to-end behind the in-band protocol — including under a lossy
control channel.
"""

import pytest

from repro.core.protocol import (
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_RATE_LIMITED,
)
from repro.core.queries import (
    ExposureHistoryQuery,
    GeoLocationQuery,
    IsolationQuery,
    ReachableDestinationsQuery,
    TrafficScope,
)
from repro.dataplane.topologies import fat_tree_topology, linear_topology
from repro.faults import FaultPlan
from repro.hsa.parallel import FanOutPool, chunks
from repro.serving import (
    MonotonicClock,
    QueryScheduler,
    ServingConfig,
    TokenBucket,
    VirtualClock,
)
from repro.serving.metrics import batch_bucket, percentile
from repro.testbed import build_testbed


# ----------------------------------------------------------------------
# Clocks (satellite: freshness must never be negative)
# ----------------------------------------------------------------------


class TestMonotonicClock:
    def test_passes_forward_motion_through(self):
        readings = iter([1.0, 2.0, 5.0])
        clock = MonotonicClock(lambda: next(readings))
        assert [clock.now(), clock.now(), clock.now()] == [1.0, 2.0, 5.0]
        assert clock.regressions == 0

    def test_clamps_backward_steps_and_counts_them(self):
        readings = iter([5.0, 3.0, 4.0, 6.0])
        clock = MonotonicClock(lambda: next(readings))
        assert clock.now() == 5.0
        assert clock.now() == 5.0  # 3.0 clamped
        assert clock.now() == 5.0  # 4.0 clamped
        assert clock.now() == 6.0
        assert clock.regressions == 2

    def test_freshness_age_never_negative_across_regression(self):
        """The satellite in service terms: evidence taken at t=5 must
        not acquire a negative age when the base clock rewinds."""
        readings = iter([5.0, 1.0])
        clock = MonotonicClock(lambda: next(readings))
        taken_at = clock.now()
        assert clock.now() - taken_at >= 0.0


class TestVirtualClock:
    def test_advance_and_advance_to(self):
        clock = VirtualClock()
        clock.advance(1.5)
        assert clock.now() == 1.5
        clock.advance_to(1.0)  # never backwards
        assert clock.now() == 1.5
        with pytest.raises(ValueError):
            clock.advance(-0.1)


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        assert not bucket.try_take(0.1)
        assert bucket.try_take(1.0)  # 1.8 tokens refilled by t=1

    def test_backward_time_does_not_refill(self):
        bucket = TokenBucket(rate=100.0, burst=1.0, now=5.0)
        assert bucket.try_take(5.0)
        assert not bucket.try_take(1.0)


# ----------------------------------------------------------------------
# Scheduler unit behaviour (fake engine)
# ----------------------------------------------------------------------


class FakeSnapshot:
    def __init__(self, content: str, taken_at: float = 0.0, version: int = 1):
        self._content = content
        self.taken_at = taken_at
        self.version = version

    def content_hash(self) -> str:
        return self._content


class Collector:
    """Collects (pending, outcome) pairs; indexable by nonce."""

    def __init__(self):
        self.outcomes = {}

    def __call__(self, pending, outcome):
        self.outcomes[pending.nonce] = outcome


def make_scheduler(config=None, *, clock=None, **overrides):
    """A scheduler over a fake engine that returns tagged answers and
    counts real calls."""
    state = {"snapshot": FakeSnapshot("v1"), "calls": []}

    def answer_fn(client, query, snapshot):
        state["calls"].append((client, query))
        return ("answer", client, repr(query), snapshot.content_hash())

    scheduler = QueryScheduler(
        answer_fn=answer_fn,
        snapshot_fn=lambda: state["snapshot"],
        clock=clock,
        config=config or ServingConfig(**overrides),
    )
    return scheduler, state


class TestCoalescing:
    def test_identical_requests_share_one_engine_call(self):
        scheduler, state = make_scheduler()
        done = Collector()
        for nonce in range(4):
            scheduler.submit("a", IsolationQuery(), nonce=nonce, on_done=done)
        scheduler.pump()
        assert len(state["calls"]) == 1
        assert scheduler.metrics.coalesced == 3
        answers = [done.outcomes[n].answer for n in range(4)]
        assert all(a == answers[0] for a in answers)
        assert done.outcomes[0].coalesced is False
        assert done.outcomes[1].coalesced is True

    def test_different_clients_never_share(self):
        scheduler, state = make_scheduler()
        done = Collector()
        scheduler.submit("a", IsolationQuery(), nonce=0, on_done=done)
        scheduler.submit("b", IsolationQuery(), nonce=1, on_done=done)
        scheduler.pump()
        assert len(state["calls"]) == 2
        assert scheduler.metrics.coalesced == 0

    def test_auth_variants_coalesce_to_canonical_query(self):
        """`authenticate` is per-request liveness evidence, not engine
        input: both variants must share one call."""
        scheduler, state = make_scheduler()
        done = Collector()
        scheduler.submit(
            "a", IsolationQuery(authenticate=True), nonce=0, on_done=done
        )
        scheduler.submit(
            "a", IsolationQuery(authenticate=False), nonce=1, on_done=done
        )
        scheduler.pump()
        assert len(state["calls"]) == 1
        assert done.outcomes[0].answer == done.outcomes[1].answer

    def test_never_coalesce_classes_run_individually(self):
        scheduler, state = make_scheduler()
        done = Collector()
        scheduler.submit("a", ExposureHistoryQuery(), nonce=0, on_done=done)
        scheduler.submit("a", ExposureHistoryQuery(), nonce=1, on_done=done)
        scheduler.pump()
        assert len(state["calls"]) == 2
        assert scheduler.metrics.coalesced == 0

    def test_answer_cache_spans_batches_on_unchanged_snapshot(self):
        scheduler, state = make_scheduler()
        done = Collector()
        scheduler.submit("a", IsolationQuery(), nonce=0, on_done=done)
        scheduler.pump()
        scheduler.submit("a", IsolationQuery(), nonce=1, on_done=done)
        scheduler.pump()
        assert len(state["calls"]) == 1
        assert scheduler.metrics.answer_cache_hits == 1
        assert done.outcomes[0].answer == done.outcomes[1].answer

    def test_answer_cache_keyed_by_snapshot_content(self):
        scheduler, state = make_scheduler()
        done = Collector()
        scheduler.submit("a", IsolationQuery(), nonce=0, on_done=done)
        scheduler.pump()
        state["snapshot"] = FakeSnapshot("v2", version=2)
        scheduler.submit("a", IsolationQuery(), nonce=1, on_done=done)
        scheduler.pump()
        assert len(state["calls"]) == 2
        assert done.outcomes[0].answer != done.outcomes[1].answer

    def test_coalesce_disabled_runs_every_request(self):
        scheduler, state = make_scheduler(coalesce=False)
        done = Collector()
        scheduler.submit("a", IsolationQuery(), nonce=0, on_done=done)
        scheduler.submit("a", IsolationQuery(), nonce=1, on_done=done)
        scheduler.pump()
        assert len(state["calls"]) == 2


class TestAdmission:
    def test_shed_oldest_gets_explicit_overload_reply(self):
        scheduler, state = make_scheduler(max_queue=2)
        done = Collector()
        for nonce in range(3):
            scheduler.submit("a", IsolationQuery(), nonce=nonce, on_done=done)
        # nonce 0 (oldest) was shed before the pump.
        assert done.outcomes[0].status == STATUS_OVERLOADED
        assert done.outcomes[0].answer is None
        assert scheduler.metrics.shed == 1
        scheduler.pump()
        assert done.outcomes[1].status == STATUS_OK
        assert done.outcomes[2].status == STATUS_OK

    def test_overload_reply_carries_freshness_once_known(self):
        state = {"snapshot": FakeSnapshot("v1", taken_at=1.0)}
        clock = VirtualClock(start=3.0)
        scheduler = QueryScheduler(
            answer_fn=lambda c, q, s: "ok",
            snapshot_fn=lambda: state["snapshot"],
            freshness_fn=lambda s: ("freshness", s.taken_at),
            clock=clock,
            config=ServingConfig(max_queue=1),
        )
        done = Collector()
        scheduler.submit("a", IsolationQuery(), nonce=0, on_done=done)
        scheduler.pump()  # records the last served snapshot
        scheduler.submit("a", IsolationQuery(), nonce=1, on_done=done)
        scheduler.submit("a", IsolationQuery(), nonce=2, on_done=done)
        assert done.outcomes[1].status == STATUS_OVERLOADED
        assert done.outcomes[1].freshness == ("freshness", 1.0)

    def test_rate_limit_refuses_then_recovers(self):
        clock = VirtualClock()
        scheduler, state = make_scheduler(
            ServingConfig(rate_per_client=1.0, rate_burst=1.0), clock=clock
        )
        done = Collector()
        assert scheduler.submit("a", IsolationQuery(), nonce=0, on_done=done)
        assert scheduler.submit("a", IsolationQuery(), nonce=1, on_done=done) is None
        assert done.outcomes[1].status == STATUS_RATE_LIMITED
        assert scheduler.metrics.rate_limited == 1
        # An unrelated client has its own bucket.
        assert scheduler.submit("b", IsolationQuery(), nonce=2, on_done=done)
        # And the bucket refills with (virtual) time.
        clock.advance(2.0)
        assert scheduler.submit("a", IsolationQuery(), nonce=3, on_done=done)

    def test_batch_metrics_recorded(self):
        scheduler, state = make_scheduler(batch_size=8)
        done = Collector()
        for nonce in range(5):
            scheduler.submit("a", IsolationQuery(), nonce=nonce, on_done=done)
        scheduler.pump()
        assert scheduler.metrics.batches == 1
        assert scheduler.metrics.max_batch == 5
        assert scheduler.metrics.batch_size_hist == {"5-8": 1}
        assert scheduler.metrics.queue_peak == 5


class TestShardedExecution:
    def test_worker_count_does_not_change_results(self):
        queries = [
            IsolationQuery(),
            GeoLocationQuery(),
            ReachableDestinationsQuery(),
            IsolationQuery(scope=TrafficScope(tp_dst=80)),
            ReachableDestinationsQuery(scope=TrafficScope(tp_dst=443)),
        ]
        outcomes = {}
        for workers in (1, 4):
            scheduler, _ = make_scheduler(shard_workers=workers)
            done = Collector()
            for nonce, query in enumerate(queries):
                scheduler.submit(
                    f"client{nonce % 2}", query, nonce=nonce, on_done=done
                )
            scheduler.pump()
            outcomes[workers] = [
                done.outcomes[n].answer for n in range(len(queries))
            ]
        assert outcomes[1] == outcomes[4]

    def test_map_chunked_matches_serial_map(self):
        items = list(range(23))
        fn = lambda ctx, item: (ctx, item * item)
        serial = [fn("ctx", item) for item in items]
        for workers in (1, 3, 8):
            pool = FanOutPool(workers, "thread")
            assert pool.map_chunked(fn, "ctx", items) == serial

    def test_chunks_partition_preserves_order(self):
        items = list(range(10))
        shards = list(chunks(items, 3))
        assert shards == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
        with pytest.raises(ValueError):
            list(chunks(items, 0))


class TestStaleFastPath:
    def make(self, ready):
        state = {
            "snapshot": FakeSnapshot("v1", taken_at=0.0),
            "warmed": [],
        }
        clock = VirtualClock(start=1.0)
        scheduler = QueryScheduler(
            answer_fn=lambda c, q, s: ("answer", s.content_hash()),
            snapshot_fn=lambda: state["snapshot"],
            clock=clock,
            # batch_size=1 keeps a second queued request as "pressure"
            config=ServingConfig(batch_size=1, max_stale_age=30.0),
            ready_fn=lambda s: ready(s.content_hash()),
            warm_fn=lambda s: state["warmed"].append(s.content_hash()),
        )
        return scheduler, state, clock

    def test_uncompiled_snapshot_served_stale_under_pressure(self):
        scheduler, state, clock = self.make(ready=lambda c: c == "v1")
        done = Collector()
        scheduler.submit("a", IsolationQuery(), nonce=0, on_done=done)
        scheduler.pump()  # serves v1, records it as the verified source
        assert done.outcomes[0].stale is False

        state["snapshot"] = FakeSnapshot("v2", taken_at=1.0, version=2)
        q = ReachableDestinationsQuery()
        scheduler.submit("a", q, nonce=1, on_done=done)
        scheduler.submit("a", GeoLocationQuery(), nonce=2, on_done=done)
        scheduler.pump()  # full batch + backlog = pressure
        assert done.outcomes[1].stale is True
        assert done.outcomes[1].answer == ("answer", "v1")
        assert scheduler.metrics.stale_served == 1
        # Background warm requested for the churned snapshot; direct
        # mode runs it when the queue drains.
        scheduler.flush()
        scheduler.idle_work()
        assert state["warmed"] == ["v2"]
        assert scheduler.metrics.warm_compiles == 1

    def test_compiled_snapshot_served_fresh(self):
        scheduler, state, clock = self.make(ready=lambda c: True)
        done = Collector()
        scheduler.submit("a", IsolationQuery(), nonce=0, on_done=done)
        scheduler.pump()
        state["snapshot"] = FakeSnapshot("v2", taken_at=1.0, version=2)
        scheduler.submit("a", IsolationQuery(), nonce=1, on_done=done)
        scheduler.submit("a", GeoLocationQuery(), nonce=2, on_done=done)
        scheduler.pump()
        assert done.outcomes[1].stale is False
        assert done.outcomes[1].answer == ("answer", "v2")

    def test_stale_age_bound_forces_fresh_serve(self):
        scheduler, state, clock = self.make(ready=lambda c: c == "v1")
        done = Collector()
        scheduler.submit("a", IsolationQuery(), nonce=0, on_done=done)
        scheduler.pump()
        clock.advance(100.0)  # the verified evidence is now too old
        state["snapshot"] = FakeSnapshot("v2", taken_at=1.0, version=2)
        scheduler.submit("a", IsolationQuery(), nonce=1, on_done=done)
        scheduler.submit("a", GeoLocationQuery(), nonce=2, on_done=done)
        scheduler.pump()
        assert done.outcomes[1].stale is False
        assert done.outcomes[1].answer == ("answer", "v2")


class TestMetricsHelpers:
    def test_batch_bucket_labels(self):
        assert batch_bucket(1) == "1"
        assert batch_bucket(2) == "2"
        assert batch_bucket(3) == "3-4"
        assert batch_bucket(4) == "3-4"
        assert batch_bucket(5) == "5-8"
        assert batch_bucket(200) == "129-256"

    def test_percentile_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) in (99.0, 100.0)  # rank rounding
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 100.0
        assert percentile([], 50) == 0.0


# ----------------------------------------------------------------------
# Verifier row cache (serving-tier acceleration)
# ----------------------------------------------------------------------


class TestRowCache:
    def test_cached_answers_equal_uncached_across_churn(self, monkeypatch):
        # The row cache fronts the atom matrix; the wildcard backend
        # never touches it, so pin the backend the cache exists for.
        monkeypatch.setenv("RVAAS_HSA_BACKEND", "atom")
        bed = build_testbed(
            linear_topology(3, hosts_per_switch=2, clients=["a", "b"]),
            isolate_clients=True,
        )
        cold = build_testbed(
            linear_topology(3, hosts_per_switch=2, clients=["a", "b"]),
            isolate_clients=True,
        )
        bed.service.verifier.enable_row_cache()
        queries = [
            IsolationQuery(),
            ReachableDestinationsQuery(),
            GeoLocationQuery(),
            IsolationQuery(scope=TrafficScope(tp_dst=80)),
        ]
        for _ in range(2):  # second round hits the cache
            for query in queries:
                for client in ("a", "b"):
                    assert bed.service.answer_locally(
                        client, query
                    ) == cold.service.answer_locally(client, query)
        verifier = bed.service.verifier
        assert verifier.row_cache_hits > 0

    def test_disabled_cache_counts_nothing(self):
        bed = build_testbed(linear_topology(2, clients=["a"]))
        bed.service.answer_locally("a", IsolationQuery())
        assert bed.service.verifier.row_cache_hits == 0
        assert bed.service.verifier.row_cache_misses == 0


# ----------------------------------------------------------------------
# Snapshot reuse (monitor clean-mirror cache)
# ----------------------------------------------------------------------


class TestSnapshotReuse:
    def test_clean_mirror_snapshots_are_reused(self):
        bed = build_testbed(linear_topology(2, clients=["a"]))
        monitor = bed.service.monitor
        s1 = bed.service.snapshot()
        built = monitor.metrics.snapshots_built
        s2 = bed.service.snapshot()
        assert monitor.metrics.snapshots_built == built
        assert monitor.metrics.snapshots_reused >= 1
        assert s2.content_hash() == s1.content_hash()
        assert s2.version == s1.version

    def test_reused_snapshot_restamps_taken_at(self):
        bed = build_testbed(linear_topology(2, clients=["a"]))
        s1 = bed.service.snapshot()
        bed.network.sim.run(duration=1.0)
        s2 = bed.service.snapshot()
        if s2.content_hash() == s1.content_hash():
            assert s2.taken_at >= s1.taken_at


# ----------------------------------------------------------------------
# End-to-end: the tier behind the in-band protocol
# ----------------------------------------------------------------------


def serving_bed(**kwargs):
    return build_testbed(
        fat_tree_topology(4, clients=["alice", "bob"]),
        isolate_clients=True,
        serving=ServingConfig(),
        **kwargs,
    )


class TestInBandServing:
    def test_served_answers_match_serial_path(self):
        serial = build_testbed(
            fat_tree_topology(4, clients=["alice", "bob"]),
            isolate_clients=True,
        )
        served = serving_bed()
        assert served.service.scheduler is not None
        for query in (
            IsolationQuery(),
            ReachableDestinationsQuery(),
            GeoLocationQuery(),
        ):
            a = serial.ask("alice", query).response
            b = served.ask("alice", query).response
            assert a.answer == b.answer
            assert b.status == STATUS_OK
        assert served.service.scheduler.metrics.served >= 3

    def test_rate_limited_client_gets_signed_refusal(self):
        bed = build_testbed(
            fat_tree_topology(4, clients=["alice", "bob"]),
            isolate_clients=True,
            serving=ServingConfig(rate_per_client=0.001, rate_burst=1.0),
        )
        first = bed.ask("alice", IsolationQuery())
        assert first.response.status == STATUS_OK
        second = bed.ask("alice", IsolationQuery())
        assert second.response.status == STATUS_RATE_LIMITED
        assert second.response.answer is None
        # The refusal is sealed: it resolved through the client's
        # signature verification like any other response.
        assert second.done

    def test_serving_under_lossy_control_channel(self):
        """Chaos: the tier must keep answering under control-channel
        faults, and its answers must match the serial frontend under
        the *same* fault plan (faults change ground truth — dropped
        install flowmods — so a fault-free bed is not the reference).
        """
        plan = FaultPlan.uniform(
            drop=0.15, delay=0.3, max_extra_delay=0.02, seed=11, active_until=2.0
        )

        def noisy_bed(serving):
            return build_testbed(
                fat_tree_topology(4, clients=["alice", "bob"]),
                isolate_clients=True,
                serving=serving,
                fault_plan=plan,
            )

        served = noisy_bed(ServingConfig())
        serial = noisy_bed(None)
        for when in (3.0, 15.0):
            served.network.sim.run_until(when)
            serial.network.sim.run_until(when)
            for client in ("alice", "bob"):
                a = served.ask(client, IsolationQuery(), max_wait=10.0)
                b = serial.ask(client, IsolationQuery(), max_wait=10.0)
                assert a.response.status == STATUS_OK
                assert a.response.answer == b.response.answer
        assert served.service.scheduler.metrics.served >= 4
