"""Tests for multi-provider federation (§IV-C a, experiment E9)."""

import pytest

from repro.controlplane.provider import ProviderController
from repro.core.monitor import MonitorMode
from repro.core.multiprovider import (
    ProviderDomain,
    RVaaSFederation,
    restrict_snapshot,
)
from repro.core.protocol import ClientRegistration, HostRecord
from repro.core.service import RVaaSController
from repro.crypto.keys import generate_keypair
from repro.dataplane.network import Network
from repro.dataplane.topologies import linear_topology


def build_federation(n_domains=2, switches_per_domain=2, seed=0):
    """A linear internetwork split into consecutive provider domains.

    One client ("acme") has a host in the first and last domain, so a
    federated reachability query must traverse every domain boundary.
    """
    import random

    n_switches = n_domains * switches_per_domain
    topo = linear_topology(n_switches, hosts_per_switch=1, clients=["acme"])
    net = Network(topo, seed=seed)
    provider = ProviderController()
    provider.attach(net)
    provider.deploy()

    key_rng = random.Random(seed ^ 0xFED)
    client_key = generate_keypair("client:acme", rng=key_rng)
    host_keys = {
        h.name: generate_keypair(f"host:{h.name}", rng=key_rng)
        for h in topo.hosts.values()
    }
    registration = ClientRegistration(
        name="acme",
        public_key=client_key.public,
        hosts=tuple(
            HostRecord(
                name=h.name,
                ip=h.ip.value,
                switch=h.switch,
                port=h.port,
                public_key=host_keys[h.name].public,
            )
            for h in sorted(topo.hosts.values(), key=lambda h: h.name)
        ),
    )

    domains = []
    names = sorted(topo.switches, key=lambda s: int(s[1:]))
    for d in range(n_domains):
        owned = frozenset(
            names[d * switches_per_domain : (d + 1) * switches_per_domain]
        )
        service = RVaaSController(
            generate_keypair(f"rvaas-{d}", rng=key_rng),
            {"acme": registration},
            name=f"rvaas-{d}",
            monitor_mode=MonitorMode.PASSIVE,
        )
        service.attach(net, switches=sorted(owned))
        from repro.core.monitor import ConfigurationMonitor

        service.inband = None  # federation tests exercise verifiers only
        service.monitor = ConfigurationMonitor(
            service, topo, mode=MonitorMode.PASSIVE
        )
        service.on_monitor_update = (  # type: ignore[assignment]
            lambda sw, msg, svc=service: svc.monitor.handle_monitor_update(sw, msg)
        )
        service.monitor.start()
        domains.append(ProviderDomain(name=f"P{d}", switches=owned, service=service))
    net.run(1.0)
    federation = RVaaSFederation(domains, topo)
    return topo, net, federation, registration


class TestConstruction:
    def test_domain_lookup(self):
        topo, net, federation, reg = build_federation()
        assert federation.domain_of("s1").name == "P0"
        assert federation.domain_of("s3").name == "P1"

    def test_duplicate_switch_rejected(self):
        topo, net, federation, reg = build_federation()
        domains = list(federation.domains.values())
        with pytest.raises(ValueError):
            RVaaSFederation(
                [domains[0], ProviderDomain("X", domains[0].switches, domains[0].service)],
                topo,
            )

    def test_boundary_detection(self):
        topo, net, federation, reg = build_federation()
        # The s2-s3 link crosses P0|P1.
        link = topo.link_between("s2", "s3")
        assert federation.boundary_peer("s2", link.port_a) == ("s3", link.port_b)
        intra = topo.link_between("s1", "s2")
        assert federation.boundary_peer("s1", intra.port_a) is None

    def test_restrict_snapshot_drops_foreign_state(self):
        topo, net, federation, reg = build_federation()
        domain = federation.domains["P0"]
        snapshot = restrict_snapshot(
            domain.service.snapshot(), domain.switches
        )
        assert set(snapshot.rules) <= set(domain.switches)
        for here, there in snapshot.wiring.items():
            assert here[0] in domain.switches and there[0] in domain.switches


class TestFederatedQueries:
    def test_reachability_spans_domains(self):
        topo, net, federation, reg = build_federation()
        answer = federation.reachable_destinations(reg)
        hosts = {e.host for e in answer.endpoints}
        assert hosts == {h.name for h in topo.hosts.values()}
        assert set(answer.domains_involved) == {"P0", "P1"}

    def test_federated_messages_counted(self):
        topo, net, federation, reg = build_federation()
        answer = federation.reachable_destinations(reg)
        assert answer.federated_messages >= 1
        assert answer.max_chain_depth >= 1

    def test_chain_depth_scales_with_domains(self):
        _t3, _n3, fed3, reg3 = build_federation(n_domains=3)
        answer = fed3.reachable_destinations(reg3)
        assert set(answer.domains_involved) == {"P0", "P1", "P2"}
        assert answer.max_chain_depth >= 2

    def test_single_domain_no_messages(self):
        topo, net, federation, reg = build_federation(n_domains=1)
        answer = federation.reachable_destinations(reg)
        assert answer.federated_messages == 0
        assert answer.max_chain_depth == 0

    def test_regions_traversed_union(self):
        topo, net, federation, reg = build_federation()
        regions = federation.regions_traversed(reg)
        assert regions  # every switch has a generated region
        # Must include regions from both ends of the chain.
        first = topo.switches["s1"].location.region
        last = topo.switches[f"s{len(topo.switches)}"].location.region
        assert first in regions and last in regions
