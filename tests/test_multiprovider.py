"""Tests for multi-provider federation (§IV-C a, experiments E9/E22)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controlplane.provider import ProviderController
from repro.core.engine import VerificationEngine
from repro.core.monitor import MonitorMode
from repro.core.multiprovider import (
    ProviderDomain,
    RVaaSFederation,
    restrict_snapshot,
)
from repro.core.protocol import ClientRegistration, HostRecord
from repro.core.service import RVaaSController
from repro.core.snapshot import NetworkSnapshot, SnapshotMeter
from repro.crypto.keys import generate_keypair
from repro.dataplane.asgraph import (
    as_graph_topology,
    build_snapshot,
    client_registration,
    federation_from_asgraph,
)
from repro.dataplane.network import Network
from repro.dataplane.topologies import linear_topology
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.wildcard import Wildcard


def build_federation(n_domains=2, switches_per_domain=2, seed=0):
    """A linear internetwork split into consecutive provider domains.

    One client ("acme") has a host in the first and last domain, so a
    federated reachability query must traverse every domain boundary.
    """
    import random

    n_switches = n_domains * switches_per_domain
    topo = linear_topology(n_switches, hosts_per_switch=1, clients=["acme"])
    net = Network(topo, seed=seed)
    provider = ProviderController()
    provider.attach(net)
    provider.deploy()

    key_rng = random.Random(seed ^ 0xFED)
    client_key = generate_keypair("client:acme", rng=key_rng)
    host_keys = {
        h.name: generate_keypair(f"host:{h.name}", rng=key_rng)
        for h in topo.hosts.values()
    }
    registration = ClientRegistration(
        name="acme",
        public_key=client_key.public,
        hosts=tuple(
            HostRecord(
                name=h.name,
                ip=h.ip.value,
                switch=h.switch,
                port=h.port,
                public_key=host_keys[h.name].public,
            )
            for h in sorted(topo.hosts.values(), key=lambda h: h.name)
        ),
    )

    domains = []
    names = sorted(topo.switches, key=lambda s: int(s[1:]))
    for d in range(n_domains):
        owned = frozenset(
            names[d * switches_per_domain : (d + 1) * switches_per_domain]
        )
        service = RVaaSController(
            generate_keypair(f"rvaas-{d}", rng=key_rng),
            {"acme": registration},
            name=f"rvaas-{d}",
            monitor_mode=MonitorMode.PASSIVE,
        )
        service.attach(net, switches=sorted(owned))
        from repro.core.monitor import ConfigurationMonitor

        service.inband = None  # federation tests exercise verifiers only
        service.monitor = ConfigurationMonitor(
            service, topo, mode=MonitorMode.PASSIVE
        )
        service.on_monitor_update = (  # type: ignore[assignment]
            lambda sw, msg, svc=service: svc.monitor.handle_monitor_update(sw, msg)
        )
        service.monitor.start()
        domains.append(ProviderDomain(name=f"P{d}", switches=owned, service=service))
    net.run(1.0)
    federation = RVaaSFederation(domains, topo)
    return topo, net, federation, registration


class TestConstruction:
    def test_domain_lookup(self):
        topo, net, federation, reg = build_federation()
        assert federation.domain_of("s1").name == "P0"
        assert federation.domain_of("s3").name == "P1"

    def test_duplicate_switch_rejected(self):
        topo, net, federation, reg = build_federation()
        domains = list(federation.domains.values())
        with pytest.raises(ValueError):
            RVaaSFederation(
                [domains[0], ProviderDomain("X", domains[0].switches, domains[0].service)],
                topo,
            )

    def test_boundary_detection(self):
        topo, net, federation, reg = build_federation()
        # The s2-s3 link crosses P0|P1.
        link = topo.link_between("s2", "s3")
        assert federation.boundary_peer("s2", link.port_a) == ("s3", link.port_b)
        intra = topo.link_between("s1", "s2")
        assert federation.boundary_peer("s1", intra.port_a) is None

    def test_restrict_snapshot_drops_foreign_state(self):
        topo, net, federation, reg = build_federation()
        domain = federation.domains["P0"]
        snapshot = restrict_snapshot(
            domain.service.snapshot(), domain.switches
        )
        assert set(snapshot.rules) <= set(domain.switches)
        for here, there in snapshot.wiring.items():
            assert here[0] in domain.switches and there[0] in domain.switches


class TestFederatedQueries:
    def test_reachability_spans_domains(self):
        topo, net, federation, reg = build_federation()
        answer = federation.reachable_destinations(reg)
        hosts = {e.host for e in answer.endpoints}
        assert hosts == {h.name for h in topo.hosts.values()}
        assert set(answer.domains_involved) == {"P0", "P1"}

    def test_federated_messages_counted(self):
        topo, net, federation, reg = build_federation()
        answer = federation.reachable_destinations(reg)
        assert answer.federated_messages >= 1
        assert answer.max_chain_depth >= 1

    def test_chain_depth_scales_with_domains(self):
        _t3, _n3, fed3, reg3 = build_federation(n_domains=3)
        answer = fed3.reachable_destinations(reg3)
        assert set(answer.domains_involved) == {"P0", "P1", "P2"}
        assert answer.max_chain_depth >= 2

    def test_single_domain_no_messages(self):
        topo, net, federation, reg = build_federation(n_domains=1)
        answer = federation.reachable_destinations(reg)
        assert answer.federated_messages == 0
        assert answer.max_chain_depth == 0

    def test_regions_traversed_union(self):
        topo, net, federation, reg = build_federation()
        answer = federation.regions_traversed(reg)
        assert answer.regions  # every switch has a generated region
        # Must include regions from both ends of the chain.
        first = topo.switches["s1"].location.region
        last = topo.switches[f"s{len(topo.switches)}"].location.region
        assert first in answer.regions and last in answer.regions

    def test_region_query_accounting_matches_reachability(self):
        # Satellite: regions_traversed used to return a bare tuple with
        # no message/depth accounting — both query classes now share
        # one envelope with identical accounting.
        topo, net, federation, reg = build_federation(n_domains=3)
        reach = federation.reachable_destinations(reg)
        region = federation.regions_traversed(reg)
        assert region.federated_messages == reach.federated_messages
        assert region.max_chain_depth == reach.max_chain_depth
        assert region.domains_involved == reach.domains_involved
        assert region.endpoints == reach.endpoints
        assert region.regions == reach.regions
        assert region.federated_messages >= 2
        assert region.max_chain_depth == 2

    def test_truncation_is_reported(self):
        # Satellite: items beyond max_depth used to vanish silently; a
        # truncated answer must be distinguishable from a complete one.
        topo, net, federation, reg = build_federation(n_domains=3)
        # One source host in the first domain only.
        reg_one = ClientRegistration(
            name=reg.name, public_key=reg.public_key, hosts=(reg.hosts[0],)
        )
        full = federation.reachable_destinations(reg_one)
        assert not full.truncated and full.dropped_items == 0
        federation.max_depth = 0
        answer = federation.reachable_destinations(reg_one)
        assert answer.truncated
        assert answer.dropped_items >= 1
        # Only the home domain was explored.
        assert set(answer.domains_involved) == {"P0"}
        assert set(answer.endpoints) < set(full.endpoints)

    def test_modes_agree(self):
        # serial, matrix and the legacy recompile baseline must produce
        # byte-identical envelopes (accounting aside, which is per-mode).
        topo, net, federation, reg = build_federation(n_domains=3)
        answers = {
            mode: federation.federated_query(reg, mode=mode)
            for mode in ("serial", "matrix", "recompile")
        }
        baseline = answers["serial"]
        for mode, answer in answers.items():
            assert answer.endpoints == baseline.endpoints, mode
            assert answer.regions == baseline.regions, mode
            assert answer.domains_involved == baseline.domains_involved, mode
            assert answer.max_chain_depth == baseline.max_chain_depth, mode
            assert not answer.truncated

    def test_unknown_mode_rejected(self):
        topo, net, federation, reg = build_federation()
        with pytest.raises(ValueError):
            federation.federated_query(reg, mode="psychic")


class TestCompileCaching:
    def test_one_compile_per_domain_snapshot_per_query(self):
        # Regression for the cache-bypassing hot path: every work item
        # used to rebuild ReachabilityAnalyzer(snapshot.network_tf()).
        # Routed through VerificationEngine, a domain compiles its
        # restricted snapshot once, no matter how many hops cross it.
        topo, net, federation, reg = build_federation(n_domains=3)
        answer = federation.federated_query(reg, mode="serial")
        assert len(answer.endpoints) == len(topo.hosts)
        for domain in federation.domains.values():
            assert domain.verification_engine().metrics.network_tf_builds == 1
        # A second query reuses every compiled artifact.
        federation.federated_query(reg, mode="serial")
        for domain in federation.domains.values():
            assert domain.verification_engine().metrics.network_tf_builds == 1

    def test_domain_context_reused_across_queries(self):
        topo, net, federation, reg = build_federation()
        federation.reachable_destinations(reg)
        contexts = {
            name: federation._contexts[name] for name in federation.domains
        }
        federation.regions_traversed(reg)
        for name, ctx in contexts.items():
            assert federation._contexts[name] is ctx


class TestRestrictSnapshot:
    def _asgraph_state(self, n=6, seed=7):
        asg = as_graph_topology(n, seed=seed)
        return asg, build_snapshot(asg)

    def test_boundary_ports_become_unbound_never_edge(self):
        asg, snapshot = self._asgraph_state()
        name = asg.order[0]
        switches = frozenset(asg.nodes[name].switches)
        restricted = restrict_snapshot(snapshot, switches)
        tf = restricted.network_tf()
        cross_domain = [
            here
            for here, there in snapshot.wiring.items()
            if here[0] in switches and there[0] not in switches
        ]
        assert cross_domain  # the AS has at least one provider/peer link
        for switch, port in cross_domain:
            role = tf.role_of(switch, port)
            assert role.kind == "unbound"
            assert role.kind != "edge"
        # Host attachments stay edge ports.
        for switch, ports in restricted.edge_ports.items():
            for port in ports:
                assert tf.role_of(switch, port).kind == "edge"

    def test_meters_locations_capacities_filtered(self):
        from repro.openflow.meters import MeterBand

        asg, base = self._asgraph_state()
        inside = asg.order[0]
        outside = asg.order[1]
        switches = frozenset(asg.nodes[inside].switches)
        meters = (
            SnapshotMeter(
                switch=asg.nodes[inside].border,
                meter_id=1,
                band=MeterBand(rate_kbps=1000),
            ),
            SnapshotMeter(
                switch=asg.nodes[outside].border,
                meter_id=2,
                band=MeterBand(rate_kbps=2000),
            ),
        )
        snapshot = NetworkSnapshot(
            version=base.version,
            taken_at=base.taken_at,
            rules=base.rules,
            meters=meters,
            wiring=base.wiring,
            edge_ports=base.edge_ports,
            switch_ports=base.switch_ports,
            locations=base.locations,
            link_capacities=base.link_capacities,
        )
        restricted = restrict_snapshot(snapshot, switches)
        assert [m.meter_id for m in restricted.meters] == [1]
        assert set(restricted.locations) == set(switches)
        for pair in restricted.link_capacities:
            assert pair <= switches
        # The source snapshot had strictly more of each.
        assert len(snapshot.locations) > len(restricted.locations)
        assert len(snapshot.link_capacities) > len(restricted.link_capacities)

    def test_restricted_content_hash_matches_unseeded(self):
        # The _switch_hashes seeding is a pure optimisation: the hash
        # must equal the one computed from scratch.
        asg, snapshot = self._asgraph_state()
        switches = frozenset(asg.nodes[asg.order[0]].switches)
        seeded = restrict_snapshot(snapshot, switches)
        bare = NetworkSnapshot(
            version=seeded.version,
            taken_at=seeded.taken_at,
            rules=seeded.rules,
            meters=seeded.meters,
            wiring=seeded.wiring,
            edge_ports=seeded.edge_ports,
            switch_ports=seeded.switch_ports,
            locations=seeded.locations,
            link_capacities=seeded.link_capacities,
        )
        assert seeded.content_hash() == bare.content_hash()

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_composition_equals_whole_network_analysis(self, seed):
        # Property: federated per-domain analyses composed across the
        # boundary equal one whole-network analysis of the
        # unpartitioned snapshot — for every source host.
        asg = as_graph_topology(7, seed=seed, client_sites=2)
        snapshot = build_snapshot(asg)
        federation = federation_from_asgraph(asg, snapshot=snapshot)
        engine = VerificationEngine()
        reg = client_registration(asg)
        whole_ports = set()
        whole_regions = set()
        for host in reg.hosts:
            space = HeaderSpace.single(
                Wildcard.from_fields(ip_src=host.ip, vlan_id=0)
            )
            result = engine.analyze(snapshot, host.switch, host.port, space)
            whole_ports |= {
                (z.switch, z.port) for z in result.zones if z.kind == "edge"
            }
            for switch in result.switches_traversed:
                location = snapshot.location_of(switch)
                if location is not None:
                    whole_regions.add(location.region)
        answer = federation.reachable_destinations(reg)
        assert {(e.switch, e.port) for e in answer.endpoints} == whole_ports
        assert set(answer.regions) == whole_regions
        assert not answer.truncated
