"""Tests for the preventive verify-then-install gate (prevention mode).

The gate interposes on the provider->switch FlowMod path and verifies
every rule against the client contracts *before* it reaches the data
plane.  Covered here:

* FlowMod semantics helpers and the drop-only loop-skip argument,
* the decision lattice (allow / repair / quarantine / block) and the
  interception-rule protection,
* prevention of every armed attack with delivery preserved,
* the null-policy differential: a do-nothing gate run is byte-identical
  to a gateless run (timing, RNG, sequence numbers, mirror),
* transactional rollback of partially installed batches,
* burst-evasion handling under both failure dispositions, with signed
  audit records and recovery re-verification,
* the ACTIVE -> DEGRADED -> RECOVERING -> ACTIVE health machine,
* the speculative-overlay ablation (stale-mirror verification misses
  the interleaved diversion; the overlay catches it),
* chaos: transient verification faults are retried, lossy channels do
  not wedge the gate.
"""

import pickle
from collections import Counter

from repro.attacks import (
    BlackholeAttack,
    BurstEvasionAttack,
    DiversionAttack,
    ExfiltrationAttack,
    GeoViolationAttack,
    InterleavedDiversionAttack,
)
from repro.attacks.base import ATTACK_COOKIE
from repro.core.gate import (
    GATE_ACTIVE,
    GATE_ALLOW,
    GATE_BLOCK,
    GATE_QUARANTINE,
    GATE_REPAIR,
    GateConfig,
    GatePolicy,
    _cannot_create_loops,
    apply_flowmod,
    rule_from_mod,
    verify_gate_record,
)
from repro.core.monitor import MonitorMode
from repro.dataplane.topologies import isp_topology
from repro.faults import FaultPlan
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import Drop, Output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.testbed import build_testbed

FORBIDDEN = ("offshore",)


def gated_bed(seed=42, gate=None, **kwargs):
    if gate is None:
        gate = GateConfig(policy=GatePolicy(forbidden_regions=FORBIDDEN))
    return build_testbed(
        isp_topology(clients=["alice", "bob"]),
        seed=seed,
        isolate_clients=True,
        gate=gate,
        **kwargs,
    )


def blackhole_flowmod(bed):
    """The raw blackhole rule: drop h_ber1 -> h_fra1 at its ingress."""
    return (
        "ber",
        Match(
            ip_src=bed.network.host("h_ber1").ip,
            ip_dst=bed.network.host("h_fra1").ip,
        ),
    )


def delivered(bed, src="h_ber1", dst="h_fra1"):
    before = len(bed.network.host(dst).received)
    bed.network.host(src).send_udp(bed.network.host(dst).ip, 1000, b"x")
    bed.run(1.0)
    return len(bed.network.host(dst).received) > before


class TestFlowModSemantics:
    def test_rule_from_mod_round_trip(self):
        mod = FlowMod(
            command=FlowModCommand.ADD,
            match=Match(tp_dst=80),
            actions=(Output(2),),
            priority=7,
            cookie=99,
        )
        rule = rule_from_mod(mod)
        assert rule.priority == 7 and rule.cookie == 99
        assert rule.match == mod.match and rule.actions == mod.actions

    def test_apply_flowmod_add_and_delete(self):
        add = FlowMod(
            command=FlowModCommand.ADD,
            match=Match(tp_dst=80),
            actions=(Drop(),),
            priority=5,
        )
        rules = apply_flowmod((), add)
        assert len(rules) == 1
        gone = apply_flowmod(
            rules, FlowMod(command=FlowModCommand.DELETE, match=Match())
        )
        assert gone == ()

    def test_drop_only_mods_cannot_create_loops(self):
        drop_add = FlowMod(
            command=FlowModCommand.ADD, match=Match(tp_dst=80), actions=(Drop(),)
        )
        assert _cannot_create_loops(drop_add)

    def test_forwarding_and_delete_mods_may_create_loops(self):
        fwd = FlowMod(
            command=FlowModCommand.ADD, match=Match(tp_dst=80), actions=(Output(1),)
        )
        assert not _cannot_create_loops(fwd)
        # A DELETE can unmask a lower-priority looping rule: never skip.
        delete = FlowMod(command=FlowModCommand.DELETE, match=Match(tp_dst=80))
        assert not _cannot_create_loops(delete)
        mixed = FlowMod(
            command=FlowModCommand.ADD,
            match=Match(tp_dst=80),
            actions=(Drop(), Output(1)),
        )
        assert not _cannot_create_loops(mixed)


class TestDecisionLattice:
    def test_benign_rule_allowed(self):
        bed = gated_bed()
        decoy = IPv4Address.parse("203.0.113.9")
        bed.provider.install_flow(
            "ber", Match(ip_src=decoy, ip_dst=decoy), (Drop(),), priority=3
        )
        bed.run(1.0)
        assert [d.verdict for d in bed.gate.decisions] == [GATE_ALLOW]
        assert bed.gate.metrics.allowed == 1

    def test_violating_rule_repaired_and_harmless(self):
        bed = gated_bed()
        switch, match = blackhole_flowmod(bed)
        bed.provider.install_flow(switch, match, (Drop(),), priority=20)
        bed.run(1.0)
        assert [d.verdict for d in bed.gate.decisions] == [GATE_REPAIR]
        # The demoted twin is shadowed by the agreed-policy rules: the
        # victim flow still delivers.
        assert delivered(bed)

    def test_unrepairable_rule_quarantined(self):
        policy = GatePolicy(repair=False)
        bed = gated_bed(gate=GateConfig(policy=policy))
        switch, match = blackhole_flowmod(bed)
        bed.provider.install_flow(switch, match, (Drop(),), priority=20)
        bed.run(1.0)
        assert [d.verdict for d in bed.gate.decisions] == [GATE_QUARANTINE]
        entries = bed.gate.shadow.for_switch(switch)
        assert len(entries) == 1 and entries[0].rule.priority == 20
        # Quarantine never touches the data plane.
        assert delivered(bed)

    def test_block_when_repair_and_quarantine_disabled(self):
        policy = GatePolicy(repair=False, quarantine=False)
        bed = gated_bed(gate=GateConfig(policy=policy))
        switch, match = blackhole_flowmod(bed)
        bed.provider.install_flow(switch, match, (Drop(),), priority=20)
        bed.run(1.0)
        assert [d.verdict for d in bed.gate.decisions] == [GATE_BLOCK]
        assert delivered(bed)

    def test_punt_rule_delete_blocked(self):
        bed = gated_bed()
        # A wildcard DELETE would wipe the RVaaS interception rules
        # along with everything else: the gate must refuse it outright.
        bed.provider.remove_flow("ber", Match())
        bed.run(1.0)
        assert [d.verdict for d in bed.gate.decisions] == [GATE_BLOCK]
        assert any("interception" in v for v in bed.gate.decisions[0].violations)

    def test_decisions_are_signed(self):
        bed = gated_bed()
        switch, match = blackhole_flowmod(bed)
        bed.provider.install_flow(switch, match, (Drop(),), priority=20)
        bed.run(1.0)
        public = bed.service.keypair.public
        assert bed.gate.decisions
        assert all(verify_gate_record(d, public) for d in bed.gate.decisions)


class TestAttackPrevention:
    """Every armed attack is stopped before touching the data plane."""

    def check(self, make_attack, *, victim=("h_ber1", "h_fra1")):
        bed = gated_bed()
        bed.provider.compromise(make_attack())
        bed.run(2.0)
        stats = bed.gate.stats()
        stopped = stats["blocked"] + stats["repaired"] + stats["quarantined"]
        assert stopped >= 1, stats
        # Zero post-install damage: every attack rule still live at its
        # requested priority is one the gate explicitly verified harmless
        # (e.g. a diversion segment whose activating tagger was repaired),
        # and the victim flow still delivers.
        live_attack_rules = sum(
            1
            for switch in bed.topology.switches
            for r in bed.service.monitor.current_rules(switch)
            if r.cookie == ATTACK_COOKIE and r.priority >= 20
        )
        assert live_attack_rules <= stats["allowed"]
        assert delivered(bed, *victim)
        return bed

    def test_blackhole(self):
        self.check(lambda: BlackholeAttack("h_ber1", "h_fra1"))

    def test_diversion(self):
        bed = self.check(lambda: DiversionAttack("h_ber1", "h_fra1", "off"))
        received = bed.network.host("h_fra1").received
        assert "off" not in [s for s, _ in received[-1].trace]

    def test_exfiltration(self):
        bed = self.check(
            lambda: ExfiltrationAttack("h_fra1", "h_ber2"),
            victim=("h_ber1", "h_fra1"),
        )
        assert not bed.network.host("h_ber2").received

    def test_geo_violation(self):
        bed = self.check(lambda: GeoViolationAttack("h_ber1", "h_par1", "offshore"))
        received = bed.network.host("h_fra1").received
        assert "off" not in [s for s, _ in received[-1].trace]


class TestNullGateIdentity:
    def test_null_policy_run_byte_identical_to_gateless(self):
        def run(gate):
            bed = build_testbed(
                isp_topology(clients=["alice", "bob"]),
                seed=42,
                isolate_clients=True,
                gate=gate,
            )
            bed.provider.compromise(BlackholeAttack("h_ber1", "h_fra1"))
            bed.run(5.0)
            sim = bed.network.sim
            mirror = {
                s: bed.service.monitor.current_rules(s)
                for s in sorted(bed.provider.channels)
            }
            seqs = tuple(
                (ch.controller_end._send_seq, ch.switch_end._send_seq)
                for ch in bed.network.channels
            )
            return (sim.now, sim.rng.getstate(), seqs, pickle.dumps(mirror))

        gateless = run(None)
        null_gated = run(GateConfig(policy=GatePolicy.null()))
        assert gateless == null_gated


class TestTransactions:
    def test_mid_batch_refusal_rolls_back_prefix(self):
        bed = gated_bed()
        switch, bad_match = blackhole_flowmod(bed)
        decoy = IPv4Address.parse("203.0.113.77")
        policy = GatePolicy(
            forbidden_regions=FORBIDDEN, repair=False, quarantine=False
        )
        bed = gated_bed(gate=GateConfig(policy=policy))
        switch, bad_match = blackhole_flowmod(bed)
        with bed.provider.flow_transaction():
            bed.provider.install_flow(
                switch, Match(ip_src=decoy, ip_dst=decoy), (Drop(),), priority=3
            )
            bed.provider.install_flow(switch, bad_match, (Drop(),), priority=20)
        bed.run(1.5)
        verdicts = Counter(d.verdict for d in bed.gate.decisions)
        assert verdicts[GATE_BLOCK] >= 1
        assert bed.gate.metrics.batches_aborted >= 1
        assert bed.gate.metrics.rollbacks >= 1
        # All-or-nothing: the benign prefix member is gone again.
        live = bed.service.monitor.current_rules(switch)
        assert not any(r.priority == 3 and r.match.ip_src for r in live)
        assert delivered(bed)


class TestBurstEvasion:
    def test_fail_open_audits_and_remediates(self):
        bed = gated_bed(seed=7, gate=GateConfig(max_pending=16))
        bed.provider.compromise(
            BurstEvasionAttack(BlackholeAttack("h_ber1", "h_fra1"), burst=64)
        )
        bed.run(0.3)
        mid_state = bed.gate.state
        bed.run(10.0)
        gate = bed.gate
        stats = gate.stats()
        assert mid_state != GATE_ACTIVE  # pressure degraded the gate
        assert gate.state == GATE_ACTIVE  # ...and it recovered
        assert stats["passed_through"] >= 1
        assert stats["fail_open_windows"] >= 1
        assert stats["backlog_reverified"] >= stats["passed_through"] - 1
        assert stats["backlog_remediated"] >= 1
        public = bed.service.keypair.public
        assert all(verify_gate_record(r, public) for r in gate.audit_log)
        # The smuggled blackhole was rolled back at recovery.
        live = bed.service.monitor.current_rules("ber")
        assert not any(
            r.cookie == ATTACK_COOKIE and r.priority == 20 and not r.match.tp_dst
            for r in live
        )
        assert delivered(bed)

    def test_fail_closed_installs_nothing_unverified(self):
        policy = GatePolicy(fail_open=False)
        bed = gated_bed(
            seed=7, gate=GateConfig(policy=policy, max_pending=16)
        )
        bed.provider.compromise(
            BurstEvasionAttack(BlackholeAttack("h_ber1", "h_fra1"), burst=64)
        )
        bed.run(10.0)
        stats = bed.gate.stats()
        assert stats["passed_through"] == 0
        assert stats["fail_closed_rejects"] >= 1
        live = bed.service.monitor.current_rules("ber")
        assert not any(r.cookie == ATTACK_COOKIE for r in live)
        assert delivered(bed)


class TestSpeculativeOverlay:
    """The overlay is load-bearing: stale-mirror verification misses
    the interleaved diversion (each step is individually inert)."""

    def run_interleaved(self, overlay):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]),
            seed=11,
            isolate_clients=True,
            monitor_mode=MonitorMode.ACTIVE,
            mean_poll_interval=5.0,
            gate=GateConfig(speculative_overlay=overlay),
        )
        bed.provider.compromise(
            InterleavedDiversionAttack("h_ber1", "h_fra1", "off", stage_gap=0.05)
        )
        bed.run(1.0)
        bed.network.host("h_ber1").send_udp(
            bed.network.host("h_fra1").ip, 1000, b"x"
        )
        bed.run(1.0)
        received = bed.network.host("h_fra1").received
        via_off = bool(received) and "off" in [s for s, _ in received[-1].trace]
        return bed, via_off

    def test_overlay_stops_interleaved_diversion(self):
        bed, via_off = self.run_interleaved(overlay=True)
        assert not via_off
        verdicts = {d.verdict for d in bed.gate.decisions}
        assert verdicts & {GATE_REPAIR, GATE_BLOCK, GATE_QUARANTINE}

    def test_stale_mirror_ablation_misses_it(self):
        bed, via_off = self.run_interleaved(overlay=False)
        assert via_off  # the ablated gate waves every stage through
        assert {d.verdict for d in bed.gate.decisions} == {GATE_ALLOW}


class TestChaos:
    def test_transient_verify_faults_are_retried(self):
        plan = FaultPlan.uniform(gate_verify_failure=0.5, seed=5, active_until=8.0)
        bed = gated_bed(
            seed=5,
            fault_plan=plan,
            gate=GateConfig(
                policy=GatePolicy(forbidden_regions=FORBIDDEN), verify_retries=4
            ),
        )
        decoy = IPv4Address.parse("203.0.113.50")
        for i in range(6):
            bed.provider.install_flow(
                "fra", Match(ip_src=decoy, tp_dst=40000 + i), (Drop(),), priority=3
            )
        bed.provider.compromise(BlackholeAttack("h_ber1", "h_fra1"))
        bed.run(4.0)
        assert bed.fault_injector.metrics.gate_verify_failures >= 1
        assert bed.gate.metrics.retries >= 1
        stats = bed.gate.stats()
        assert stats["blocked"] + stats["repaired"] + stats["quarantined"] >= 1
        assert delivered(bed)

    def test_lossy_channels_do_not_wedge_the_gate(self):
        plan = FaultPlan.uniform(drop=0.2, delay=0.2, seed=9, active_until=6.0)
        bed = gated_bed(seed=9, fault_plan=plan)
        bed.provider.compromise(BlackholeAttack("h_ber1", "h_fra1"))
        bed.run(8.0)
        stats = bed.gate.stats()
        assert stats["intercepted"] >= 1
        assert stats["pending"] == 0  # nothing stuck in the queue
        assert stats["blocked"] + stats["repaired"] + stats["quarantined"] >= 1
