"""Tests for the adversary library: each attack's data-plane effect."""

import pytest

from repro.attacks import (
    BlackholeAttack,
    DiversionAttack,
    ExfiltrationAttack,
    GeoViolationAttack,
    JoinAttack,
    ShortLivedReconfigurationAttack,
)
from repro.controlplane.malicious import CompromisedController
from repro.dataplane.network import Network
from repro.dataplane.topologies import isp_topology, linear_topology


@pytest.fixture()
def isp():
    topo = isp_topology(clients=["alice", "bob"])
    net = Network(topo, seed=3)
    provider = CompromisedController()
    provider.attach(net)
    provider.deploy()
    net.run_until_idle()
    return topo, net, provider


def send_and_settle(net, src, dst, payload=b"x", dport=1000):
    net.host(src).send_udp(net.host(dst).ip, dport, payload)
    net.run_until_idle()


class TestDiversion:
    def test_traffic_takes_detour(self, isp):
        topo, net, provider = isp
        provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        net.run_until_idle()
        send_and_settle(net, "h_ber1", "h_fra1")
        trace = [s for s, _ in net.host("h_fra1").received[0].trace]
        assert "off" in trace
        assert net.host("h_fra1").received[0].vlan_id == 0  # tag removed

    def test_delivery_still_works(self, isp):
        topo, net, provider = isp
        provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        net.run_until_idle()
        send_and_settle(net, "h_ber1", "h_fra1", b"payload")
        assert net.host("h_fra1").received[0].payload == b"payload"

    def test_other_flows_unaffected(self, isp):
        topo, net, provider = isp
        provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        net.run_until_idle()
        send_and_settle(net, "h_ber2", "h_fra1")
        trace = [s for s, _ in net.host("h_fra1").received[0].trace]
        assert "off" not in trace

    def test_via_on_existing_path_no_tagging(self, isp):
        topo, net, provider = isp
        # fra is already on the ber->par shortest path? ber-fra-par vs
        # ber-fra direct; use via == ingress switch.
        provider.compromise(DiversionAttack("h_ber1", "h_fra1", "ber"))
        net.run_until_idle()
        send_and_settle(net, "h_ber1", "h_fra1")
        assert len(net.host("h_fra1").received) == 1

    def test_provider_keeps_lying(self, isp):
        topo, net, provider = isp
        claimed_before = provider.report_path("h_ber1", "h_fra1")
        provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        assert provider.report_path("h_ber1", "h_fra1") == claimed_before

    def test_disarm_restores(self, isp):
        topo, net, provider = isp
        attack = DiversionAttack("h_ber1", "h_fra1", "off")
        provider.compromise(attack)
        net.run_until_idle()
        provider.retreat(attack)
        net.run_until_idle()
        send_and_settle(net, "h_ber1", "h_fra1")
        trace = [s for s, _ in net.host("h_fra1").received[0].trace]
        assert "off" not in trace


class TestJoinAttack:
    @pytest.fixture()
    def isolated(self):
        topo = isp_topology(clients=["alice", "bob"])
        net = Network(topo, seed=3)
        provider = CompromisedController()
        provider.attach(net)
        provider.deploy(isolate_clients=True)
        net.run_until_idle()
        return topo, net, provider

    def test_covert_route_works(self, isolated):
        topo, net, provider = isolated
        send_and_settle(net, "h_ber2", "h_fra1")  # bob -> alice blocked
        assert net.host("h_fra1").received == []
        provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        net.run_until_idle()
        send_and_settle(net, "h_ber2", "h_fra1")
        assert len(net.host("h_fra1").received) == 1

    def test_unidirectional_by_default(self, isolated):
        topo, net, provider = isolated
        provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        net.run_until_idle()
        send_and_settle(net, "h_fra1", "h_ber2")
        assert net.host("h_ber2").received == []

    def test_bidirectional_option(self, isolated):
        topo, net, provider = isolated
        provider.compromise(JoinAttack("h_ber2", "h_fra1", bidirectional=True))
        net.run_until_idle()
        send_and_settle(net, "h_fra1", "h_ber2")
        assert len(net.host("h_ber2").received) == 1

    def test_report_names_victim_client(self, isolated):
        topo, net, provider = isolated
        report = provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        assert report.victim_client == "alice"
        assert report.violated_property == "isolation"


class TestExfiltration:
    def test_copy_reaches_spy(self, isp):
        topo, net, provider = isp
        provider.compromise(ExfiltrationAttack("h_par1", "h_ams1"))
        net.run_until_idle()
        send_and_settle(net, "h_ber1", "h_par1", b"secret")
        assert net.host("h_par1").received[0].payload == b"secret"
        assert net.host("h_ams1").received[0].payload == b"secret"

    def test_same_switch_spy(self, isp):
        topo, net, provider = isp
        provider.compromise(ExfiltrationAttack("h_ber1", "h_ber2"))
        net.run_until_idle()
        send_and_settle(net, "h_fra1", "h_ber1", b"secret")
        assert net.host("h_ber1").received and net.host("h_ber2").received


class TestBlackhole:
    def test_drops_flow(self, isp):
        topo, net, provider = isp
        provider.compromise(BlackholeAttack("h_ber1", "h_fra1"))
        net.run_until_idle()
        send_and_settle(net, "h_ber1", "h_fra1")
        assert net.host("h_fra1").received == []

    def test_reverse_direction_unaffected(self, isp):
        topo, net, provider = isp
        provider.compromise(BlackholeAttack("h_ber1", "h_fra1"))
        net.run_until_idle()
        send_and_settle(net, "h_fra1", "h_ber1")
        assert len(net.host("h_ber1").received) == 1


class TestGeoViolation:
    def test_routes_through_forbidden_region(self, isp):
        topo, net, provider = isp
        report = provider.compromise(
            GeoViolationAttack("h_ber1", "h_fra1", "offshore")
        )
        net.run_until_idle()
        send_and_settle(net, "h_ber1", "h_fra1")
        trace = [s for s, _ in net.host("h_fra1").received[0].trace]
        assert "off" in trace
        assert report.violated_property == "geo"

    def test_unknown_region_rejected(self, isp):
        topo, net, provider = isp
        with pytest.raises(ValueError):
            provider.compromise(
                GeoViolationAttack("h_ber1", "h_fra1", "atlantis")
            )


class TestShortLivedReconfiguration:
    def test_flapping_schedule(self, isp):
        topo, net, provider = isp
        inner = BlackholeAttack("h_ber1", "h_fra1")
        flapper = ShortLivedReconfigurationAttack(
            inner, period=1.0, active_duration=0.3
        )
        provider.compromise(flapper)
        net.run(2.5)  # covers activations at ~t0, t0+1, t0+2
        flapper.stop()
        assert len(flapper.activations) == 3
        for on, off in flapper.activations:
            assert abs((off - on) - 0.3) < 1e-9

    def test_ground_truth_was_active_at(self, isp):
        topo, net, provider = isp
        inner = BlackholeAttack("h_ber1", "h_fra1")
        flapper = ShortLivedReconfigurationAttack(
            inner, period=1.0, active_duration=0.3, phase=0.5
        )
        provider.compromise(flapper)
        net.run(2.0)
        assert flapper.was_active_at(0.6)
        assert not flapper.was_active_at(0.9)

    def test_stop_halts_flapping(self, isp):
        topo, net, provider = isp
        inner = BlackholeAttack("h_ber1", "h_fra1")
        flapper = ShortLivedReconfigurationAttack(
            inner, period=1.0, active_duration=0.3
        )
        provider.compromise(flapper)
        net.run(0.1)
        flapper.stop()
        count = len(flapper.activations)
        net.run(5.0)
        assert len(flapper.activations) == count

    def test_data_plane_flaps(self, isp):
        topo, net, provider = isp
        inner = BlackholeAttack("h_ber1", "h_fra1")
        flapper = ShortLivedReconfigurationAttack(
            inner, period=2.0, active_duration=1.0
        )
        start = net.sim.now
        provider.compromise(flapper)
        net.run(0.5)  # attack active
        net.host("h_ber1").send_udp(net.host("h_fra1").ip, 1, b"a")
        net.run(0.2)
        dropped = len(net.host("h_fra1").received) == 0
        net.sim.run_until(start + 1.3)  # now in the inactive half-cycle
        net.host("h_ber1").send_udp(net.host("h_fra1").ip, 1, b"b")
        net.run(0.2)
        delivered = len(net.host("h_fra1").received) == 1
        flapper.stop()
        assert dropped and delivered

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            ShortLivedReconfigurationAttack(
                BlackholeAttack("a", "b"), period=1.0, active_duration=2.0
            )
