"""Unit tests for repro.netlib.packet."""

import pytest

from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.constants import ETH_TYPE_IPV4, IP_PROTO_UDP
from repro.netlib.packet import HEADER_FIELDS, Packet, udp_packet


def make_packet(**overrides):
    base = dict(
        eth_src=MacAddress.from_host_index(1),
        eth_dst=MacAddress.from_host_index(2),
        ip_src=IPv4Address.parse("10.0.0.1"),
        ip_dst=IPv4Address.parse("10.0.0.2"),
        tp_src=1111,
        tp_dst=2222,
    )
    base.update(overrides)
    return Packet(**base)


class TestHeaders:
    def test_header_returns_int_values(self):
        packet = make_packet()
        assert packet.header("ip_src") == IPv4Address.parse("10.0.0.1").value
        assert packet.header("tp_dst") == 2222
        assert packet.header("eth_type") == ETH_TYPE_IPV4

    def test_header_none_ip_is_zero(self):
        packet = make_packet(ip_src=None)
        assert packet.header("ip_src") == 0

    def test_header_unknown_field_raises(self):
        with pytest.raises(KeyError):
            make_packet().header("ttl")

    def test_headers_covers_all_fields(self):
        assert set(make_packet().headers()) == set(HEADER_FIELDS)

    def test_default_protocol_is_udp(self):
        assert make_packet().ip_proto == IP_PROTO_UDP


class TestReplace:
    def test_replace_coerces_strings(self):
        packet = make_packet().replace(ip_dst="10.9.9.9", eth_dst="02:00:00:00:00:09")
        assert packet.ip_dst == IPv4Address.parse("10.9.9.9")
        assert packet.eth_dst == MacAddress.parse("02:00:00:00:00:09")

    def test_replace_is_functional(self):
        original = make_packet()
        changed = original.replace(vlan_id=100)
        assert original.vlan_id == 0
        assert changed.vlan_id == 100

    def test_replace_keeps_payload(self):
        packet = make_packet(payload=b"data").replace(tp_dst=80)
        assert packet.payload == b"data"


class TestTrace:
    def test_with_hop_appends(self):
        packet = make_packet().with_hop("s1", 1).with_hop("s2", 3)
        assert packet.trace == (("s1", 1), ("s2", 3))

    def test_trace_not_part_of_equality(self):
        a = make_packet().with_hop("s1", 1)
        b = make_packet()
        assert a == b


class TestSizeAndDescribe:
    def test_size_scales_with_bytes_payload(self):
        small = make_packet(payload=b"")
        large = make_packet(payload=b"x" * 1000)
        assert large.size_bytes == small.size_bytes + 1000

    def test_object_payload_has_fixed_estimate(self):
        packet = make_packet(payload={"key": "value"})
        assert packet.size_bytes > 64

    def test_describe_mentions_addresses(self):
        text = make_packet().describe()
        assert "10.0.0.1" in text and "udp" in text


class TestUdpConstructor:
    def test_udp_packet_sets_fields(self):
        packet = udp_packet(
            eth_src=MacAddress.from_host_index(1),
            eth_dst=MacAddress.from_host_index(2),
            ip_src=IPv4Address.parse("10.0.0.1"),
            ip_dst=IPv4Address.parse("10.0.0.2"),
            sport=5,
            dport=6,
            payload="hello",
        )
        assert packet.ip_proto == IP_PROTO_UDP
        assert (packet.tp_src, packet.tp_dst) == (5, 6)
        assert packet.payload == "hello"
