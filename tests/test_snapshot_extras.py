"""Remaining snapshot / federation coverage: capacities, hashing, sizing."""

import pytest

from repro.core.multiprovider import restrict_snapshot
from repro.core.snapshot import NetworkSnapshot, SnapshotMeter, switch_rules_hash
from repro.dataplane.topologies import isp_topology, linear_topology
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.transfer import SnapshotRule
from repro.hsa.wildcard import Wildcard
from repro.openflow.match import Match
from repro.openflow.actions import Drop, Output
from repro.openflow.meters import MeterBand
from repro.testbed import build_testbed


class TestSnapshotCapacities:
    def test_capacities_match_wiring_plan(self):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=1
        )
        snapshot = bed.service.snapshot()
        assert len(snapshot.link_capacities) == len(bed.topology.links)
        for link in bed.topology.links:
            key = frozenset((link.switch_a, link.switch_b))
            assert snapshot.link_capacities[key] == link.bandwidth_mbps

    def test_restrict_snapshot_filters_capacities(self):
        bed = build_testbed(
            linear_topology(4, hosts_per_switch=1, clients=["a"]),
            isolate_clients=False,
            seed=2,
        )
        snapshot = bed.service.snapshot()
        domain = frozenset({"s1", "s2"})
        restricted = restrict_snapshot(snapshot, domain)
        assert set(restricted.link_capacities) == {frozenset(("s1", "s2"))}

    def test_restricted_snapshot_hash_differs(self):
        bed = build_testbed(
            linear_topology(4, hosts_per_switch=1, clients=["a"]),
            isolate_clients=False,
            seed=2,
        )
        snapshot = bed.service.snapshot()
        restricted = restrict_snapshot(snapshot, frozenset({"s1", "s2"}))
        assert restricted.content_hash() != snapshot.content_hash()


def _tiny_snapshot(**overrides) -> NetworkSnapshot:
    base = dict(
        version=1,
        taken_at=0.0,
        rules={
            "s1": (
                SnapshotRule(
                    table_id=0,
                    priority=5,
                    match=Match.build(ip_dst="10.0.0.1"),
                    actions=(Output(2),),
                ),
            ),
            "s2": (
                SnapshotRule(
                    table_id=0,
                    priority=5,
                    match=Match.build(ip_dst="10.0.0.1"),
                    actions=(Output(1),),
                ),
            ),
        },
        meters=(),
        wiring={("s1", 2): ("s2", 2), ("s2", 2): ("s1", 2)},
        edge_ports={"s1": frozenset([1]), "s2": frozenset([1])},
        switch_ports={"s1": (1, 2), "s2": (1, 2)},
    )
    base.update(overrides)
    return NetworkSnapshot(**base)


class TestContentHashing:
    def test_switch_content_hash_is_order_sensitive(self):
        # Compilation depends on install order (stable priority sort
        # preserves first-installed-wins tie-breaks; replacement dedup
        # keeps the later rule), so the same rule multiset in a
        # different order must NOT share a cache key.
        rules = _tiny_snapshot().rules["s1"]
        extra = SnapshotRule(
            table_id=0, priority=1, match=Match.build(), actions=(Drop(),)
        )
        assert switch_rules_hash("s1", (rules[0], extra)) != switch_rules_hash(
            "s1", (extra, rules[0])
        )
        assert switch_rules_hash("s1", (rules[0], extra)) == switch_rules_hash(
            "s1", (rules[0], extra)
        )

    def test_switch_content_hash_includes_switch_name(self):
        rules = _tiny_snapshot().rules["s1"]
        assert switch_rules_hash("s1", rules) != switch_rules_hash("s2", rules)

    def test_content_hash_ignores_version_and_time(self):
        assert (
            _tiny_snapshot().content_hash()
            == _tiny_snapshot(version=9, taken_at=99.0).content_hash()
        )

    def test_changing_one_switch_changes_only_that_switch_hash(self):
        old = _tiny_snapshot()
        rules = dict(old.rules)
        rules["s2"] = rules["s2"] + (
            SnapshotRule(
                table_id=0, priority=1, match=Match.build(), actions=(Drop(),)
            ),
        )
        new = _tiny_snapshot(rules=rules)
        assert new.switch_content_hash("s1") == old.switch_content_hash("s1")
        assert new.switch_content_hash("s2") != old.switch_content_hash("s2")
        assert new.content_hash() != old.content_hash()

    def test_content_hash_covers_meters_and_wiring(self):
        base = _tiny_snapshot()
        metered = _tiny_snapshot(
            meters=(SnapshotMeter(switch="s1", meter_id=1, band=MeterBand(100)),)
        )
        rewired = _tiny_snapshot(wiring={("s1", 2): ("s2", 2)})
        assert metered.content_hash() != base.content_hash()
        assert rewired.content_hash() != base.content_hash()

    def test_content_hash_covers_switch_ports(self):
        # Switch ports feed Flood expansion and shadow-network builds,
        # and the engine's network-TF/artifact caches key on this hash.
        base = _tiny_snapshot()
        reported = _tiny_snapshot(switch_ports={"s1": (1, 2, 3), "s2": (1, 2)})
        assert reported.content_hash() != base.content_hash()

    def test_preseeded_switch_hashes_are_used(self):
        seeded = _tiny_snapshot(
            _switch_hashes={"s1": "cafe", "s2": "f00d"}
        )
        assert seeded.switch_content_hash("s1") == "cafe"


class TestApproximateSize:
    def test_size_counts_rule_payloads(self):
        small = _tiny_snapshot()
        rules = dict(small.rules)
        rules["s1"] = rules["s1"] * 50
        big = _tiny_snapshot(rules=rules)
        import sys

        per_rule = (
            sys.getsizeof(rules["s1"][0])
            + sys.getsizeof(rules["s1"][0].match)
            + sys.getsizeof(rules["s1"][0].actions)
        )
        assert (
            big.approximate_size_bytes() - small.approximate_size_bytes()
            >= 49 * per_rule
        )

    def test_size_counts_meters_and_wiring(self):
        base = _tiny_snapshot()
        metered = _tiny_snapshot(
            meters=(SnapshotMeter(switch="s1", meter_id=1, band=MeterBand(100)),)
        )
        unwired = _tiny_snapshot(wiring={})
        assert metered.approximate_size_bytes() > base.approximate_size_bytes()
        assert unwired.approximate_size_bytes() < base.approximate_size_bytes()

    def test_testbed_snapshot_dwarfs_container_only_count(self):
        bed = build_testbed(
            linear_topology(4, hosts_per_switch=1, clients=["a"]),
            isolate_clients=False,
            seed=3,
        )
        snapshot = bed.service.snapshot()
        import sys

        containers_only = sys.getsizeof(snapshot) + sum(
            sys.getsizeof(rules) for rules in snapshot.rules.values()
        )
        assert snapshot.approximate_size_bytes() > 2 * containers_only


class TestCompactIdempotence:
    def test_compact_twice_is_stable(self):
        pieces = HeaderSpace.all().subtract(
            HeaderSpace.single(Wildcard.from_fields(tp_dst=80))
        )
        once = pieces.compact()
        twice = once.compact()
        assert once.complexity() == twice.complexity()
        assert once == twice

    def test_compact_empty(self):
        assert HeaderSpace.empty().compact().is_empty()

    def test_compact_all(self):
        assert HeaderSpace.all().compact() == HeaderSpace.all()
