"""Remaining snapshot / federation coverage: capacities, compaction."""

import pytest

from repro.core.multiprovider import restrict_snapshot
from repro.dataplane.topologies import isp_topology, linear_topology
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.wildcard import Wildcard
from repro.testbed import build_testbed


class TestSnapshotCapacities:
    def test_capacities_match_wiring_plan(self):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=1
        )
        snapshot = bed.service.snapshot()
        assert len(snapshot.link_capacities) == len(bed.topology.links)
        for link in bed.topology.links:
            key = frozenset((link.switch_a, link.switch_b))
            assert snapshot.link_capacities[key] == link.bandwidth_mbps

    def test_restrict_snapshot_filters_capacities(self):
        bed = build_testbed(
            linear_topology(4, hosts_per_switch=1, clients=["a"]),
            isolate_clients=False,
            seed=2,
        )
        snapshot = bed.service.snapshot()
        domain = frozenset({"s1", "s2"})
        restricted = restrict_snapshot(snapshot, domain)
        assert set(restricted.link_capacities) == {frozenset(("s1", "s2"))}

    def test_restricted_snapshot_hash_differs(self):
        bed = build_testbed(
            linear_topology(4, hosts_per_switch=1, clients=["a"]),
            isolate_clients=False,
            seed=2,
        )
        snapshot = bed.service.snapshot()
        restricted = restrict_snapshot(snapshot, frozenset({"s1", "s2"}))
        assert restricted.content_hash() != snapshot.content_hash()


class TestCompactIdempotence:
    def test_compact_twice_is_stable(self):
        pieces = HeaderSpace.all().subtract(
            HeaderSpace.single(Wildcard.from_fields(tp_dst=80))
        )
        once = pieces.compact()
        twice = once.compact()
        assert once.complexity() == twice.complexity()
        assert once == twice

    def test_compact_empty(self):
        assert HeaderSpace.empty().compact().is_empty()

    def test_compact_all(self):
        assert HeaderSpace.all().compact() == HeaderSpace.all()
