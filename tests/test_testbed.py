"""Tests for the testbed facade itself."""

import pytest

from repro.core.queries import GeoLocationQuery
from repro.dataplane.topologies import isp_topology, linear_topology
from repro.testbed import build_registrations, build_testbed


class TestBuild:
    def test_clients_and_registrations_derived_from_topology(self):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), seed=1
        )
        assert bed.client_names() == ["alice", "bob"]
        assert len(bed.registrations["alice"].hosts) == 3
        assert len(bed.registrations["bob"].hosts) == 3

    def test_every_client_host_has_responder(self):
        bed = build_testbed(isp_topology(clients=["alice", "bob"]), seed=1)
        assert set(bed.responders) == set(
            h.name for h in bed.topology.hosts.values() if h.client
        )

    def test_unassigned_hosts_excluded(self):
        topo = linear_topology(2, hosts_per_switch=1, clients=["a"])
        # Add one host with no client.
        topo.add_host("h_nobody", "s1")
        bed = build_testbed(topo, seed=1)
        assert "h_nobody" not in bed.responders
        assert all(
            "h_nobody" != h.name
            for reg in bed.registrations.values()
            for h in reg.hosts
        )

    def test_deterministic_given_seed(self):
        def fingerprint(seed):
            bed = build_testbed(
                isp_topology(clients=["alice", "bob"]), seed=seed
            )
            return (
                bed.attested.service_keypair.public.fingerprint(),
                bed.network.sim.events_executed,
            )

        assert fingerprint(5) == fingerprint(5)
        assert fingerprint(5) != fingerprint(6)

    def test_attestation_verified_at_build(self):
        # build_testbed raises if the quote does not verify; reaching
        # here with a working client proves the chain held.
        bed = build_testbed(isp_topology(clients=["alice", "bob"]), seed=1)
        handle = bed.ask("alice", GeoLocationQuery())
        assert handle.response is not None

    def test_ask_times_out_cleanly(self):
        bed = build_testbed(isp_topology(clients=["alice", "bob"]), seed=1)
        # Sabotage: close alice's ingress port so the query never arrives.
        switch_name, port = bed.registrations["alice"].hosts[0].access_point
        bed.network.switch(switch_name).ports[port].up = False
        with pytest.raises(TimeoutError):
            bed.ask("alice", GeoLocationQuery(), max_wait=1.0)

    def test_registrations_builder_standalone(self):
        import random

        from repro.crypto.keys import generate_keypair

        topo = isp_topology(clients=["alice", "bob"])
        rng = random.Random(0)
        client_keys = {
            name: generate_keypair(name, rng=rng) for name in ("alice", "bob")
        }
        host_keys = {
            h.name: generate_keypair(h.name, rng=rng)
            for h in topo.hosts.values()
        }
        registrations = build_registrations(topo, client_keys, host_keys)
        assert set(registrations) == {"alice", "bob"}
        alice = registrations["alice"]
        assert alice.access_points == topo.access_points("alice")
