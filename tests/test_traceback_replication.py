"""Tests for attack traceback (§IV-C) and replicated verification (§I-A)."""

import random

import pytest

from repro.attacks import BlackholeAttack, JoinAttack
from repro.core.history import SnapshotHistory
from repro.core.queries import IsolationQuery, ReachableDestinationsQuery
from repro.core.replication import (
    CompromisedReplica,
    QuorumError,
    ReplicatedRVaaS,
)
from repro.core.traceback import AttackTraceback
from repro.crypto.keys import generate_keypair
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


class TestTraceback:
    def test_requires_retaining_history(self, bed):
        with pytest.raises(ValueError):
            AttackTraceback(SnapshotHistory(), bed.registrations)

    def test_clean_history_shows_no_exposure(self, bed):
        bed.run(1.0)
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        report = traceback.trace("alice", "h_fra1")
        assert not report.ever_exposed
        assert report.entries_analyzed > 0

    def test_window_reconstruction(self, bed):
        attack = JoinAttack("h_ber2", "h_fra1")
        t_armed = bed.network.sim.now
        bed.provider.compromise(attack)
        bed.run(0.5)
        t_disarmed = bed.network.sim.now
        bed.provider.retreat(attack)
        bed.run(0.5)
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        report = traceback.trace("alice", "h_fra1")
        assert report.ever_exposed
        assert len(report.windows) == 1
        window = report.windows[0]
        assert not window.still_open
        assert t_armed <= window.opened_at <= t_disarmed
        assert window.closed_at is not None
        assert window.duration() == pytest.approx(
            window.closed_at - window.opened_at
        )

    def test_ingress_port_identified(self, bed):
        """The paper's promise: 'traceback the ingress port of an attack'."""
        attack = JoinAttack("h_ber2", "h_fra1")
        bed.provider.compromise(attack)
        bed.run(0.5)
        bed.provider.retreat(attack)
        bed.run(0.5)
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        report = traceback.trace("alice", "h_fra1")
        assert report.ingress_ports() == frozenset({("ber", 2)})

    def test_enabling_rules_in_diff(self, bed):
        attack = JoinAttack("h_ber2", "h_fra1")
        bed.provider.compromise(attack)
        bed.run(0.5)
        bed.provider.retreat(attack)
        bed.run(0.5)
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        window = traceback.trace("alice", "h_fra1").windows[0]
        assert window.enabling_rules  # the covert route's rules
        assert window.disabling_rules  # and their removal

    def test_still_open_window(self, bed):
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        report = traceback.trace("alice", "h_fra1")
        assert report.windows[-1].still_open

    def test_two_separate_windows(self, bed):
        for _ in range(2):
            attack = JoinAttack("h_ber2", "h_fra1")
            bed.provider.compromise(attack)
            bed.run(0.5)
            bed.provider.retreat(attack)
            bed.run(0.5)
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        report = traceback.trace("alice", "h_fra1")
        assert len(report.windows) == 2

    def test_unrelated_host_unaffected(self, bed):
        attack = JoinAttack("h_ber2", "h_fra1")
        bed.provider.compromise(attack)
        bed.run(0.5)
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        assert not traceback.trace("alice", "h_par1").ever_exposed

    def test_trace_all(self, bed):
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        reports = traceback.trace_all("alice")
        assert set(reports) == {"h_ber1", "h_fra1", "h_par1"}
        assert reports["h_fra1"].ever_exposed
        assert not reports["h_ber1"].ever_exposed

    def test_unknown_host_rejected(self, bed):
        traceback = AttackTraceback(bed.service.history, bed.registrations)
        with pytest.raises(KeyError):
            traceback.trace("alice", "h_nope")


class TestReplication:
    def make_fleet(self, bed, *, liars=0, honest=2):
        replicas = [bed.service]
        fleet = ReplicatedRVaaS.deploy(
            bed.network, bed.registrations, count=honest, seed=9
        )
        replicas.extend(fleet.replicas)
        for index in range(liars):
            liar = CompromisedReplica(
                generate_keypair(f"liar-{index}", rng=random.Random(600 + index)),
                bed.registrations,
                name=f"rvaas-liar-{index}",
                record_history=False,
            )
            liar.start(bed.network)
            replicas.append(liar)
        bed.run(1.0)
        return ReplicatedRVaaS(replicas)

    def test_unanimous_when_honest(self, bed):
        fleet = self.make_fleet(bed, honest=2)
        result = fleet.cross_check("alice", IsolationQuery())
        assert result.unanimous
        assert result.answer.isolated

    def test_lying_replica_outvoted_and_named(self, bed):
        fleet = self.make_fleet(bed, honest=2, liars=1)
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        result = fleet.cross_check("alice", IsolationQuery())
        assert not result.answer.isolated  # the truth wins
        assert result.dissenting == ("rvaas-liar-0",)

    def test_liar_also_caught_on_reachability(self, bed):
        fleet = self.make_fleet(bed, honest=2, liars=1)
        from repro.attacks import ExfiltrationAttack

        bed.provider.compromise(ExfiltrationAttack("h_fra1", "h_off1"))
        bed.run(0.5)
        result = fleet.cross_check(
            "alice", ReachableDestinationsQuery(authenticate=False)
        )
        assert "h_off1" in {e.host for e in result.answer.endpoints}
        assert result.dissenting == ("rvaas-liar-0",)

    def test_split_raises_quorum_error(self, bed):
        liar = CompromisedReplica(
            generate_keypair("liar", rng=random.Random(601)),
            bed.registrations,
            name="rvaas-liar",
            record_history=False,
        )
        liar.start(bed.network)
        bed.run(1.0)
        fleet = ReplicatedRVaaS([bed.service, liar])
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        with pytest.raises(QuorumError):
            fleet.cross_check("alice", IsolationQuery())

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedRVaaS([])

    def test_replicas_have_independent_keys(self, bed):
        fleet = self.make_fleet(bed, honest=2)
        fingerprints = {
            replica.keypair.public.fingerprint() for replica in fleet.replicas
        }
        assert len(fingerprints) == len(fleet.replicas)
