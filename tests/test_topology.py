"""Unit tests for the topology builder and generators."""

import networkx as nx
import pytest

from repro.dataplane.topologies import (
    fat_tree_topology,
    isp_topology,
    linear_topology,
    ring_topology,
    single_switch_topology,
    tree_topology,
    waxman_topology,
)
from repro.dataplane.topology import GeoLocation, Topology


class TestBuilder:
    def test_port_allocation_sequential_per_switch(self):
        topo = Topology()
        topo.add_switch("s1")
        topo.add_switch("s2")
        h1 = topo.add_host("h1", "s1")
        h2 = topo.add_host("h2", "s1")
        link = topo.add_link("s1", "s2")
        assert (h1.port, h2.port) == (1, 2)
        assert link.port_a == 3 and link.port_b == 1

    def test_duplicate_names_rejected(self):
        topo = Topology()
        topo.add_switch("s1")
        with pytest.raises(ValueError):
            topo.add_switch("s1")
        topo.add_host("h1", "s1")
        with pytest.raises(ValueError):
            topo.add_host("h1", "s1")

    def test_unknown_switch_rejected(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.add_host("h1", "nope")
        topo.add_switch("s1")
        with pytest.raises(ValueError):
            topo.add_link("s1", "nope")

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_switch("s1")
        with pytest.raises(ValueError):
            topo.add_link("s1", "s1")

    def test_deterministic_host_addressing(self):
        def build():
            topo = Topology()
            topo.add_switch("s1")
            return topo.add_host("h1", "s1")

        assert build().ip == build().ip
        assert build().mac == build().mac

    def test_explicit_ip(self):
        topo = Topology()
        topo.add_switch("s1")
        host = topo.add_host("h1", "s1", ip="192.168.0.5")
        assert str(host.ip) == "192.168.0.5"

    def test_host_inherits_switch_location(self):
        topo = Topology()
        topo.add_switch("s1", location=GeoLocation("eu"))
        host = topo.add_host("h1", "s1")
        assert host.location.region == "eu"

    def test_wiring_is_bidirectional(self):
        topo = Topology()
        topo.add_switch("s1")
        topo.add_switch("s2")
        link = topo.add_link("s1", "s2")
        wiring = topo.wiring()
        assert wiring[("s1", link.port_a)] == ("s2", link.port_b)
        assert wiring[("s2", link.port_b)] == ("s1", link.port_a)

    def test_access_points_by_client(self):
        topo = Topology()
        topo.add_switch("s1")
        topo.add_host("h1", "s1", client="alice")
        topo.add_host("h2", "s1", client="bob")
        assert topo.access_points("alice") == frozenset({("s1", 1)})

    def test_host_lookup_helpers(self):
        topo = Topology()
        topo.add_switch("s1")
        host = topo.add_host("h1", "s1")
        assert topo.host_by_ip(host.ip).name == "h1"
        assert topo.host_at("s1", host.port).name == "h1"
        assert topo.host_at("s1", 99) is None

    def test_internal_port_map(self):
        topo = Topology()
        topo.add_switch("s1")
        topo.add_switch("s2")
        topo.add_host("h1", "s1")
        link = topo.add_link("s1", "s2")
        ports = topo.internal_port_map()
        assert ports["s1"] == frozenset({link.port_a})

    def test_graph_structure(self):
        topo = linear_topology(4)
        graph = topo.graph()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3


class TestGenerators:
    def test_single(self):
        topo = single_switch_topology(3)
        assert len(topo.switches) == 1 and len(topo.hosts) == 3

    def test_linear_counts(self):
        topo = linear_topology(5, hosts_per_switch=2)
        assert len(topo.switches) == 5
        assert len(topo.links) == 4
        assert len(topo.hosts) == 10

    def test_linear_validates(self):
        with pytest.raises(ValueError):
            linear_topology(0)

    def test_ring_has_cycle(self):
        topo = ring_topology(4)
        assert len(topo.links) == 4
        assert len(nx.cycle_basis(topo.graph())) == 1

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_tree_structure(self):
        topo = tree_topology(depth=3, fanout=2)
        assert len(topo.switches) == 7  # complete binary tree
        assert nx.is_tree(topo.graph())
        assert len(topo.hosts) == 8  # fanout hosts per leaf

    def test_fat_tree_counts(self):
        topo = fat_tree_topology(4)
        assert len(topo.switches) == 20  # 4 core + 8 agg + 8 edge
        assert len(topo.links) == 32
        assert len(topo.hosts) == 16
        assert nx.is_connected(topo.graph())

    def test_fat_tree_rejects_odd_k(self):
        with pytest.raises(ValueError):
            fat_tree_topology(3)

    def test_waxman_connected_and_deterministic(self):
        a = waxman_topology(25, seed=3)
        b = waxman_topology(25, seed=3)
        assert nx.is_connected(a.graph())
        assert [l.switch_a for l in a.links] == [l.switch_b for l in b.links] or [
            l.switch_a for l in a.links
        ] == [l.switch_a for l in b.links]

    def test_waxman_different_seeds_differ(self):
        a = waxman_topology(25, seed=3)
        b = waxman_topology(25, seed=4)
        assert {(l.switch_a, l.switch_b) for l in a.links} != {
            (l.switch_a, l.switch_b) for l in b.links
        }

    def test_isp_has_offshore_region(self):
        topo = isp_topology()
        regions = {s.location.region for s in topo.switches.values()}
        assert "offshore" in regions

    def test_client_round_robin(self):
        topo = linear_topology(4, clients=["a", "b"])
        clients = [h.client for h in topo.hosts.values()]
        assert clients.count("a") == 2 and clients.count("b") == 2

    def test_all_generators_validate(self):
        for topo in (
            single_switch_topology(2),
            linear_topology(3),
            ring_topology(3),
            tree_topology(2, 2),
            fat_tree_topology(4),
            waxman_topology(10, seed=1),
            isp_topology(),
        ):
            topo.validate()  # must not raise
