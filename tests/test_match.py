"""Unit tests for OpenFlow match semantics."""

import pytest

from repro.netlib.addresses import IPv4Address, IPv4Network, MacAddress
from repro.netlib.packet import Packet
from repro.openflow.match import Match


def packet(**overrides):
    base = dict(
        eth_src=MacAddress.from_host_index(1),
        eth_dst=MacAddress.from_host_index(2),
        ip_src=IPv4Address.parse("10.0.0.1"),
        ip_dst=IPv4Address.parse("10.0.0.2"),
        tp_src=1000,
        tp_dst=2000,
        vlan_id=0,
    )
    base.update(overrides)
    return Packet(**base)


class TestMatching:
    def test_wildcard_matches_everything(self):
        assert Match.any().matches(packet(), in_port=1)

    def test_exact_ip_dst(self):
        match = Match.build(ip_dst="10.0.0.2")
        assert match.matches(packet(), 1)
        assert not match.matches(packet(ip_dst=IPv4Address.parse("10.0.0.3")), 1)

    def test_prefix_ip_dst(self):
        match = Match.build(ip_dst="10.0.0.0/24")
        assert match.matches(packet(), 1)
        assert not match.matches(packet(ip_dst=IPv4Address.parse("10.1.0.2")), 1)

    def test_in_port(self):
        match = Match(in_port=3)
        assert match.matches(packet(), 3)
        assert not match.matches(packet(), 4)

    def test_eth_fields(self):
        match = Match.build(eth_src="02:00:00:00:00:01")
        assert match.matches(packet(), 1)
        assert not match.matches(
            packet(eth_src=MacAddress.from_host_index(9)), 1
        )

    def test_transport_ports(self):
        match = Match.build(tp_src=1000, tp_dst=2000)
        assert match.matches(packet(), 1)
        assert not match.matches(packet(tp_dst=2001), 1)

    def test_vlan(self):
        match = Match.build(vlan_id=100)
        assert not match.matches(packet(), 1)
        assert match.matches(packet(vlan_id=100), 1)

    def test_vlan_zero_means_untagged(self):
        match = Match(vlan_id=0)
        assert match.matches(packet(vlan_id=0), 1)
        assert not match.matches(packet(vlan_id=5), 1)

    def test_ip_match_on_none_header_fails(self):
        match = Match.build(ip_src="10.0.0.1")
        assert not match.matches(packet(ip_src=None), 1)

    def test_conjunction_of_fields(self):
        match = Match.build(ip_src="10.0.0.1", ip_dst="10.0.0.2", tp_dst=2000)
        assert match.matches(packet(), 1)
        assert not match.matches(packet(tp_dst=1), 1)


class TestBuild:
    def test_build_coerces_cidr(self):
        match = Match.build(ip_dst="10.0.0.0/8")
        assert isinstance(match.ip_dst, IPv4Network)

    def test_build_coerces_exact_ip(self):
        match = Match.build(ip_dst="10.0.0.1")
        assert isinstance(match.ip_dst, IPv4Address)

    def test_build_rejects_unknown_field(self):
        with pytest.raises(KeyError):
            Match.build(ttl=3)

    def test_build_skips_none(self):
        assert Match.build(ip_dst=None) == Match.any()


class TestSetRelations:
    def test_subset_wildcard_superset(self):
        narrow = Match.build(ip_dst="10.0.0.1", tp_dst=80)
        wide = Match.build(ip_dst="10.0.0.1")
        assert narrow.is_subset_of(wide)
        assert not wide.is_subset_of(narrow)

    def test_subset_prefix(self):
        assert Match.build(ip_dst="10.0.1.0/24").is_subset_of(
            Match.build(ip_dst="10.0.0.0/16")
        )
        assert not Match.build(ip_dst="10.0.0.0/16").is_subset_of(
            Match.build(ip_dst="10.0.1.0/24")
        )

    def test_subset_exact_in_prefix(self):
        assert Match.build(ip_dst="10.0.0.1").is_subset_of(
            Match.build(ip_dst="10.0.0.0/24")
        )

    def test_everything_subset_of_any(self):
        assert Match.build(tp_dst=80, in_port=2).is_subset_of(Match.any())

    def test_overlap_disjoint_fields(self):
        a = Match.build(tp_dst=80)
        b = Match.build(ip_dst="10.0.0.1")
        assert a.overlaps(b)

    def test_overlap_conflicting_values(self):
        assert not Match.build(tp_dst=80).overlaps(Match.build(tp_dst=81))

    def test_overlap_prefixes(self):
        assert Match.build(ip_dst="10.0.0.0/8").overlaps(
            Match.build(ip_dst="10.1.0.0/16")
        )
        assert not Match.build(ip_dst="10.0.0.0/16").overlaps(
            Match.build(ip_dst="10.1.0.0/16")
        )


class TestInspection:
    def test_specified_fields(self):
        match = Match.build(ip_dst="10.0.0.1", tp_dst=80)
        assert set(match.specified_fields()) == {"ip_dst", "tp_dst"}

    def test_describe_wildcard(self):
        assert Match.any().describe() == "Match(*)"

    def test_describe_lists_fields(self):
        text = Match.build(tp_dst=80).describe()
        assert "tp_dst=80" in text
