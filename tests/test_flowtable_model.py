"""Model-based property test for FlowTable.

A stateful hypothesis test drives random add / delete / strict-delete /
expire sequences against both the real :class:`FlowTable` and a naive
reference model (a list with brute-force semantics).  After every step
the two must agree on contents and on lookup results for a probe packet
set — catching ordering, replacement, and expiry edge cases that
example-based tests miss.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.packet import Packet
from repro.openflow.actions import Drop, Output
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match

IPS = [IPv4Address.parse("10.0.0.1"), IPv4Address.parse("10.0.0.2"), None]
DPORTS = [80, 81, None]
PRIORITIES = [0, 1, 2]


def make_probe(ip_index: int, dport_index: int) -> Packet:
    return Packet(
        eth_src=MacAddress.from_host_index(1),
        eth_dst=MacAddress.from_host_index(2),
        ip_src=IPv4Address.parse("10.9.9.9"),
        ip_dst=IPS[ip_index] or IPv4Address.parse("10.0.0.3"),
        tp_src=5,
        tp_dst=DPORTS[dport_index] or 99,
    )


PROBES = [make_probe(i, j) for i in range(3) for j in range(3)]

matches = st.builds(
    Match,
    ip_dst=st.sampled_from(IPS),
    tp_dst=st.sampled_from(DPORTS),
)
actions = st.sampled_from([(Output(1),), (Output(2),), (Drop(),)])
priorities = st.sampled_from(PRIORITIES)


class ReferenceModel:
    """Brute-force reimplementation of the specified table semantics."""

    def __init__(self) -> None:
        self.entries: list[dict] = []
        self.counter = 0

    def add(self, match, actions, priority, now, hard_timeout):
        for existing in list(self.entries):
            if existing["match"] == match and existing["priority"] == priority:
                if (
                    existing["actions"] == actions
                    and existing["hard_timeout"] == hard_timeout
                ):
                    return  # idempotent re-add
                self.entries.remove(existing)
        self.counter += 1
        self.entries.append(
            dict(
                match=match,
                actions=actions,
                priority=priority,
                order=self.counter,
                installed_at=now,
                hard_timeout=hard_timeout,
            )
        )

    def delete(self, match):
        self.entries = [
            e for e in self.entries if not e["match"].is_subset_of(match)
        ]

    def delete_strict(self, match, priority):
        self.entries = [
            e
            for e in self.entries
            if not (e["match"] == match and e["priority"] == priority)
        ]

    def expire(self, now):
        self.entries = [
            e
            for e in self.entries
            if not (
                e["hard_timeout"] and now >= e["installed_at"] + e["hard_timeout"]
            )
        ]

    def lookup(self, packet, in_port):
        best = None
        for entry in self.entries:
            if not entry["match"].matches(packet, in_port):
                continue
            if (
                best is None
                or entry["priority"] > best["priority"]
                or (
                    entry["priority"] == best["priority"]
                    and entry["order"] < best["order"]
                )
            ):
                best = entry
        return best


class FlowTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = FlowTable()
        self.model = ReferenceModel()
        self.now = 0.0

    @rule(match=matches, acts=actions, priority=priorities,
          timeout=st.sampled_from([0.0, 5.0]))
    def add(self, match, acts, priority, timeout):
        self.table.add(
            FlowEntry(
                match=match,
                actions=acts,
                priority=priority,
                installed_at=self.now,
                hard_timeout=timeout,
            )
        )
        self.model.add(match, acts, priority, self.now, timeout)

    @rule(match=matches)
    def delete(self, match):
        self.table.remove(match)
        self.model.delete(match)

    @rule(match=matches, priority=priorities)
    def delete_strict(self, match, priority):
        self.table.remove(match, priority=priority, strict=True)
        self.model.delete_strict(match, priority)

    @rule(dt=st.sampled_from([1.0, 3.0, 10.0]))
    def advance_time(self, dt):
        self.now += dt
        self.table.expire(self.now)
        self.model.expire(self.now)

    @invariant()
    def same_size(self):
        assert len(self.table) == len(self.model.entries)

    @invariant()
    def same_lookups(self):
        for probe in PROBES:
            real = self.table.lookup(probe, 1)
            expected = self.model.lookup(probe, 1)
            if expected is None:
                assert real is None
            else:
                assert real is not None
                assert real.priority == expected["priority"]
                assert real.match == expected["match"]
                assert real.actions == expected["actions"]


FlowTableMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)
TestFlowTableModel = FlowTableMachine.TestCase
