"""Tests for the QoS / dedicated-bandwidth query."""

import pytest

from repro.attacks import DiversionAttack, GeoViolationAttack
from repro.core.queries import BandwidthQuery
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


class TestBenign:
    def test_all_routes_at_full_capacity(self, bed):
        answer = bed.service.answer_locally("alice", BandwidthQuery())
        assert answer.reports
        assert answer.worst_bottleneck_mbps == 1000.0
        for report in answer.reports:
            assert report.min_bottleneck_mbps == report.max_bottleneck_mbps == 1000.0

    def test_contract_check(self, bed):
        assert bed.service.answer_locally(
            "alice", BandwidthQuery(minimum_mbps=500)
        ).meets_contract
        assert not bed.service.answer_locally(
            "alice", BandwidthQuery(minimum_mbps=2000)
        ).meets_contract

    def test_same_switch_destination_is_unconstrained(self):
        """A destination on the ingress switch crosses no links at all."""
        from repro.dataplane.topologies import single_switch_topology

        bed = build_testbed(
            single_switch_topology(2, clients=["alice"]),
            isolate_clients=True,
            seed=1,
        )
        answer = bed.service.answer_locally("alice", BandwidthQuery())
        assert answer.reports
        assert all(
            r.max_bottleneck_mbps == float("inf") for r in answer.reports
        )
        # No finite link on the path => any contract is met.
        assert bed.service.answer_locally(
            "alice", BandwidthQuery(minimum_mbps=10_000)
        ).meets_contract

    def test_destination_filter(self, bed):
        answer = bed.service.answer_locally(
            "alice", BandwidthQuery(destination_host="h_fra1")
        )
        assert {r.destination.host for r in answer.reports} == {"h_fra1"}

    def test_snapshot_carries_capacities(self, bed):
        snapshot = bed.service.snapshot()
        assert snapshot.link_capacities[frozenset(("fra", "off"))] == 100.0
        assert snapshot.link_capacities[frozenset(("ber", "fra"))] == 1000.0


class TestUnderAttack:
    def test_diversion_degrades_bottleneck(self, bed):
        bed.provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        bed.run(0.5)
        answer = bed.service.answer_locally("alice", BandwidthQuery(minimum_mbps=500))
        assert not answer.meets_contract
        degraded = next(
            r for r in answer.reports if r.destination.host == "h_fra1"
        )
        assert degraded.min_bottleneck_mbps == 100.0

    def test_other_destinations_unaffected(self, bed):
        bed.provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        bed.run(0.5)
        answer = bed.service.answer_locally("alice", BandwidthQuery())
        untouched = next(
            r for r in answer.reports if r.destination.host == "h_par1"
        )
        assert untouched.min_bottleneck_mbps == 1000.0

    def test_geo_attack_also_visible_as_qos(self, bed):
        """The same diversion violates two independent queries."""
        bed.provider.compromise(
            GeoViolationAttack("h_ber1", "h_fra1", "offshore")
        )
        bed.run(0.5)
        answer = bed.service.answer_locally("alice", BandwidthQuery(minimum_mbps=500))
        assert not answer.meets_contract

    def test_in_band_roundtrip(self, bed):
        handle = bed.ask("alice", BandwidthQuery(minimum_mbps=500))
        assert handle.response.answer.meets_contract
