"""End-to-end tests of the full RVaaS protocol (Figures 1 and 2).

Everything here goes through the real in-band path: sealed query packet
-> ingress interception -> Packet-In -> enclave unsealing -> HSA analysis
-> auth round via Packet-Out/Packet-In -> sealed, signed integrity reply
delivered to the querying client's access point.
"""

import pytest

from repro.attacks import ExfiltrationAttack, JoinAttack
from repro.core.inband import RVAAS_COOKIE, interception_matches
from repro.core.queries import (
    GeoLocationQuery,
    IsolationQuery,
    ReachableDestinationsQuery,
)
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


class TestHappyPath:
    def test_isolation_query_full_protocol(self, bed):
        handle = bed.ask("alice", IsolationQuery())
        response = handle.response
        assert response.answer.isolated
        assert response.client == "alice"
        assert response.nonce == handle.nonce

    def test_auth_evidence_complete(self, bed):
        handle = bed.ask("alice", IsolationQuery())
        auth = handle.response.answer.auth
        assert auth is not None
        assert auth.requests_issued == 3  # alice has three hosts
        assert auth.replies_received == 3
        assert auth.complete
        assert {e.host for e in auth.authenticated_endpoints} == {
            "h_ber1",
            "h_fra1",
            "h_par1",
        }

    def test_latency_includes_auth_timeout(self, bed):
        handle = bed.ask("alice", IsolationQuery())
        # The service waits auth_timeout (0.25 s) before replying.
        assert handle.latency >= 0.25

    def test_non_auth_query_is_fast(self, bed):
        handle = bed.ask("alice", GeoLocationQuery())
        assert handle.latency < 0.25
        assert set(handle.response.answer.regions) == {
            "de-berlin",
            "de-frankfurt",
            "fr-paris",
        }

    def test_multiple_clients_interleaved(self, bed):
        h_alice = bed.clients["alice"].submit(IsolationQuery())
        h_bob = bed.clients["bob"].submit(IsolationQuery())
        bed.run(2.0)
        assert h_alice.done and h_bob.done
        assert h_alice.response.answer.isolated
        assert h_bob.response.answer.isolated

    def test_sequential_queries_reuse_session(self, bed):
        first = bed.ask("alice", GeoLocationQuery())
        second = bed.ask("alice", GeoLocationQuery())
        assert first.nonce != second.nonce
        assert bed.clients["alice"].pending_count() == 0
        assert len(bed.clients["alice"].completed) == 2


class TestDetectionThroughProtocol:
    def test_join_attack_detected_e2e(self, bed):
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        handle = bed.ask("alice", IsolationQuery())
        answer = handle.response.answer
        assert not answer.isolated
        assert "h_ber2" in {e.host for e in answer.violating_endpoints}

    def test_exfiltration_detected_and_spy_does_not_authenticate(self, bed):
        bed.provider.compromise(ExfiltrationAttack("h_fra1", "h_off1"))
        bed.run(0.5)
        handle = bed.ask("alice", ReachableDestinationsQuery())
        answer = handle.response.answer
        hosts = {e.host for e in answer.endpoints}
        assert "h_off1" in hosts
        # The spy (bob's host) DOES respond to auth (it runs the daemon),
        # proving to alice that a live host sits behind the leak.
        assert "h_off1" in {e.host for e in answer.auth.authenticated_endpoints}

    def test_silent_endpoint_visible_in_count(self):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]),
            isolate_clients=True,
            seed=42,
            silent_hosts=["h_par1"],
        )
        handle = bed.ask("alice", IsolationQuery())
        auth = handle.response.answer.auth
        assert auth.requests_issued == 3
        assert auth.replies_received == 2
        assert not auth.complete
        assert {e.host for e in auth.silent_endpoints} == {"h_par1"}
        assert bed.silent["h_par1"].challenges_ignored == 1


class TestSelfProtection:
    def test_interception_removal_alarm_and_repair(self, bed):
        # The compromised provider deletes RVaaS's interception rules.
        from repro.openflow.messages import FlowMod, FlowModCommand

        for match in interception_matches():
            bed.provider.channel_for("ber").send_to_switch(
                FlowMod(command=FlowModCommand.DELETE, match=match)
            )
        bed.run(0.5)
        kinds = {alarm.kind for alarm in bed.service.alarms}
        assert "interception-removed" in kinds
        # Repair: the rules are back, so queries still work.
        handle = bed.ask("alice", GeoLocationQuery())
        assert handle.response is not None

    def test_wiring_check_passes_on_honest_plant(self, bed):
        bed.service.probe_topology_now()
        bed.run(0.5)
        assert bed.service.check_wiring()
        assert not any(a.kind == "wiring-mismatch" for a in bed.service.alarms)

    def test_unknown_client_raises_alarm(self, bed):
        import random

        from repro.core.client import RVaaSClient
        from repro.crypto.keys import generate_keypair

        mallory_keys = generate_keypair("mallory", rng=random.Random(666))
        mallory = RVaaSClient(
            bed.network.host("h_ber2"),
            "mallory",  # not registered
            mallory_keys,
            bed.attested.service_keypair.public,
            clock=lambda: bed.network.sim.now,
        )
        handle = mallory.submit(GeoLocationQuery())
        bed.run(1.0)
        assert not handle.done
        assert any(a.kind == "bad-request" for a in bed.service.alarms)

    def test_forged_client_signature_rejected(self, bed):
        import random

        from repro.core.client import RVaaSClient
        from repro.crypto.keys import generate_keypair

        # Mallory claims to be alice but signs with her own key.
        forged_keys = generate_keypair("not-alice", rng=random.Random(667))
        imposter = RVaaSClient(
            bed.network.host("h_ber2"),
            "alice",
            forged_keys,
            bed.attested.service_keypair.public,
            clock=lambda: bed.network.sim.now,
        )
        handle = imposter.submit(IsolationQuery())
        bed.run(1.0)
        assert not handle.done
        assert any(a.kind == "bad-request" for a in bed.service.alarms)


class TestHistoryIntegration:
    def test_history_records_config_changes(self, bed):
        before = len(bed.service.history)
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        assert len(bed.service.history) > before

    def test_transient_attack_leaves_history_witness(self, bed):
        attack = JoinAttack("h_ber2", "h_fra1")
        baseline = bed.service.snapshot().rule_signatures()
        bed.provider.compromise(attack)
        bed.run(0.5)
        bed.provider.retreat(attack)
        bed.run(0.5)
        # Attack rules are gone from the data plane...
        current = bed.service.snapshot().rule_signatures()
        assert current == baseline
        # ...but the history still shows them.
        unexpected = bed.service.history.unexpected_signatures(baseline)
        assert unexpected

    def test_queries_served_counter(self, bed):
        bed.ask("alice", GeoLocationQuery())
        bed.ask("bob", GeoLocationQuery())
        assert bed.service.queries_served == 2
