"""Adversarial corner cases and failure injection.

These tests probe the boundaries of the threat model: adversaries
mimicking RVaaS artifacts (cookies, magic headers), infrastructure
failures during protocol rounds, and the flapping attack interacting
with live queries.
"""

import pytest

from repro.attacks import BlackholeAttack, JoinAttack, ShortLivedReconfigurationAttack
from repro.core.inband import RVAAS_COOKIE
from repro.core.queries import (
    GeoLocationQuery,
    IsolationQuery,
    ReachableDestinationsQuery,
)
from repro.core.verifier import CONTROL_PLANE_ENDPOINT
from repro.dataplane.topologies import isp_topology
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import Output, ToController
from repro.openflow.match import Match
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


class TestCookieForgery:
    def test_forged_cookie_rule_still_analyzed(self, bed):
        """An attacker cannot hide a rule from analysis by stamping it
        with the RVaaS cookie: only exact interception rules are elided."""
        victim = bed.topology.hosts["h_fra1"]
        attacker = bed.topology.hosts["h_ber2"]
        covert = Match(ip_src=attacker.ip, ip_dst=victim.ip)
        link = bed.topology.link_between("ber", "fra")
        # Covert route disguised with the service cookie, both hops.
        bed.provider.install_flow(
            "ber", covert, (Output(link.port_a),), priority=20, cookie=RVAAS_COOKIE
        )
        bed.provider.install_flow(
            "fra", covert, (Output(victim.port),), priority=20, cookie=RVAAS_COOKIE
        )
        bed.run(0.5)
        # The verifier must still see the rule (it is not an exact
        # interception rule), so alice's isolation query flags bob.
        answer = bed.service.answer_locally("alice", IsolationQuery())
        assert not answer.isolated

    def test_forged_punt_rule_reported_as_control_plane_copy(self, bed):
        """A ToController rule with the forged cookie but a data-traffic
        match is exfiltration toward the control plane — reported."""
        alice_ip = IPv4Address(bed.registrations["alice"].hosts[0].ip)
        bed.provider.install_flow(
            "ber",
            Match(ip_src=alice_ip),
            (ToController(),),
            priority=30,
            cookie=RVAAS_COOKIE,
        )
        bed.run(0.5)
        answer = bed.service.answer_locally(
            "alice", ReachableDestinationsQuery(authenticate=False)
        )
        assert CONTROL_PLANE_ENDPOINT in answer.endpoints


class TestFailuresDuringProtocol:
    def test_link_failure_after_deploy_breaks_reachability_honestly(self, bed):
        """A failed link is not an attack, but verification must reflect
        the new reality rather than the stale plan."""
        bed.network.set_link_state("ber", "fra", up=False)
        bed.run(0.2)
        # Traffic that needed the link no longer flows...
        bed.network.host("h_ber1").send_udp(
            bed.network.host("h_fra1").ip, 1, b"x"
        )
        bed.run(0.5)
        assert bed.network.host("h_fra1").received == []

    def test_query_from_unaffected_part_still_works(self, bed):
        bed.network.set_link_state("fra", "off", up=False)
        bed.run(0.2)
        handle = bed.ask("alice", GeoLocationQuery())
        assert handle.response is not None

    def test_silent_victim_port_down_during_auth_round(self, bed):
        """A host whose port died mid-round shows up as silent, exactly
        like an uncooperative client — no false authentication."""
        switch, port = bed.registrations["alice"].hosts[2].access_point
        bed.network.switch(switch).ports[port].up = False
        handle = bed.ask("alice", IsolationQuery())
        auth = handle.response.answer.auth
        assert auth.requests_issued == 3
        assert auth.replies_received == 2
        assert len(auth.silent_endpoints) == 1


class TestFlappingDuringQueries:
    def test_query_during_active_phase_detects(self, bed):
        flapper = ShortLivedReconfigurationAttack(
            JoinAttack("h_ber2", "h_fra1"),
            period=4.0,
            active_duration=2.0,
        )
        bed.provider.compromise(flapper)
        bed.run(0.5)  # inside the first active window
        answer = bed.service.answer_locally("alice", IsolationQuery())
        assert not answer.isolated
        flapper.stop()

    def test_query_during_inactive_phase_clean_but_history_knows(self, bed):
        flapper = ShortLivedReconfigurationAttack(
            JoinAttack("h_ber2", "h_fra1"),
            period=2.0,
            active_duration=0.5,
        )
        start = bed.network.sim.now
        bed.provider.compromise(flapper)
        bed.network.sim.run_until(start + 1.0)  # inactive half-cycle
        answer = bed.service.answer_locally("alice", IsolationQuery())
        assert answer.isolated  # the instantaneous view is clean...
        from repro.core.queries import ExposureHistoryQuery

        history = bed.service.answer_locally("alice", ExposureHistoryQuery())
        assert history.any_exposure  # ...but the past is on record
        flapper.stop()


class TestMagicHeaderAbuse:
    def test_spoofed_magic_packet_with_garbage_ignored(self, bed):
        """Random hosts spamming the magic port cannot crash or confuse
        the service; bad payloads are dropped (only sealed requests with
        valid client signatures are processed)."""
        served_before = bed.service.queries_served
        bed.network.host("h_ber2").send_udp(
            IPv4Address(0), 17999, b"not-a-sealed-request", sport=17999
        )
        bed.run(0.5)
        assert bed.service.queries_served == served_before
        # Service still healthy.
        handle = bed.ask("alice", GeoLocationQuery())
        assert handle.response is not None

    def test_replayed_sealed_request_is_reprocessed_harmlessly(self, bed):
        """A captured sealed request replayed by the adversary yields a
        duplicate (sealed) response to the original port — no state is
        corrupted and the client simply ignores the unexpected copy."""
        client = bed.clients["alice"]
        handle = client.submit(GeoLocationQuery())
        bed.run(1.0)
        assert handle.done
        # Replay the captured request packet at bob's port.
        sealed_packet = next(
            p
            for p in bed.network.host(client.host.name).received
            if p.tp_dst == 17999
        )
        served_before = bed.service.queries_served
        bed.network.host("h_ber2").send_packet(
            sealed_packet.replace(trace=())
        )
        bed.run(1.0)
        # The service served it again (it cannot know it is a replay at
        # this layer) but alice's client state is unchanged.
        assert client.pending_count() == 0
        assert len(client.completed) == 1
