"""Unit tests for the crypto substrate (numbers, keys, sign, cipher)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import (
    SecureChannelKeys,
    hmac_tag,
    hmac_verify,
    hybrid_decrypt,
    hybrid_encrypt,
    keystream_decrypt,
    keystream_encrypt,
)
from repro.crypto.keys import generate_keypair
from repro.crypto.numbers import (
    bytes_to_int,
    generate_prime,
    int_to_bytes,
    is_probable_prime,
    modinv,
)
from repro.crypto.sign import (
    SignatureError,
    canonical_bytes,
    require_valid,
    sign,
    verify,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair("tester", rng=random.Random(99))


@pytest.fixture(scope="module")
def other_keypair():
    return generate_keypair("other", rng=random.Random(100))


class TestNumbers:
    def test_small_primes_recognised(self):
        for p in (2, 3, 5, 7, 11, 101, 7919):
            assert is_probable_prime(p)

    def test_composites_rejected(self):
        for n in (0, 1, 4, 100, 7917, 561, 41041):  # incl. Carmichael numbers
            assert not is_probable_prime(n)

    def test_generate_prime_bits_and_primality(self):
        rng = random.Random(3)
        p = generate_prime(128, rng)
        assert p.bit_length() == 128
        assert is_probable_prime(p)

    def test_generate_prime_deterministic(self):
        assert generate_prime(64, random.Random(5)) == generate_prime(
            64, random.Random(5)
        )

    def test_generate_prime_too_small(self):
        with pytest.raises(ValueError):
            generate_prime(4, random.Random(0))

    def test_modinv(self):
        assert (3 * modinv(3, 11)) % 11 == 1
        with pytest.raises(ValueError):
            modinv(6, 9)  # gcd != 1

    @given(st.integers(min_value=0, max_value=1 << 128))
    def test_int_bytes_roundtrip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    def test_int_to_bytes_fixed_length(self):
        assert len(int_to_bytes(1, 32)) == 32

    def test_int_to_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)


class TestKeys:
    def test_keygen_deterministic(self):
        a = generate_keypair("x", rng=random.Random(7))
        b = generate_keypair("x", rng=random.Random(7))
        assert a.public == b.public and a.private == b.private

    def test_keygen_distinct_seeds(self):
        a = generate_keypair("x", rng=random.Random(7))
        b = generate_keypair("x", rng=random.Random(8))
        assert a.public != b.public

    def test_modulus_size(self, keypair):
        assert keypair.public.n.bit_length() >= 500

    def test_fingerprint_stable_and_short(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 16


class TestSign:
    def test_sign_verify_roundtrip(self, keypair):
        signature = sign(b"message", keypair.private)
        assert verify(b"message", signature, keypair.public)

    def test_verify_rejects_other_message(self, keypair):
        signature = sign(b"message", keypair.private)
        assert not verify(b"other", signature, keypair.public)

    def test_verify_rejects_wrong_key(self, keypair, other_keypair):
        signature = sign(b"message", keypair.private)
        assert not verify(b"message", signature, other_keypair.public)

    def test_verify_rejects_out_of_range_signature(self, keypair):
        assert not verify(b"m", keypair.public.n + 1, keypair.public)
        assert not verify(b"m", -1, keypair.public)

    def test_sign_structured_objects(self, keypair):
        message = {"b": (1, 2), "a": frozenset({"x", "y"})}
        signature = sign(message, keypair.private)
        # Same content, different construction order -> same signature.
        equivalent = {"a": frozenset({"y", "x"}), "b": (1, 2)}
        assert verify(equivalent, signature, keypair.public)

    def test_canonical_bytes_dataclass(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Point:
            x: int
            y: int

        assert canonical_bytes(Point(1, 2)) == canonical_bytes(Point(1, 2))
        assert canonical_bytes(Point(1, 2)) != canonical_bytes(Point(2, 1))

    def test_require_valid_raises(self, keypair):
        with pytest.raises(SignatureError):
            require_valid(b"m", 12345, keypair.public)


class TestKeystream:
    def test_roundtrip(self):
        key, nonce = b"k" * 32, b"n" * 12
        plaintext = b"the quick brown fox" * 10
        ciphertext = keystream_encrypt(key, nonce, plaintext)
        assert ciphertext != plaintext
        assert keystream_decrypt(key, nonce, ciphertext) == plaintext

    def test_nonce_changes_stream(self):
        key = b"k" * 32
        a = keystream_encrypt(key, b"a" * 12, b"same")
        b = keystream_encrypt(key, b"b" * 12, b"same")
        assert a != b

    def test_empty_plaintext(self):
        assert keystream_encrypt(b"k", b"n", b"") == b""


class TestHybrid:
    def test_roundtrip(self, keypair):
        rng = random.Random(0)
        ciphertext = hybrid_encrypt(b"secret query", keypair.public, rng)
        assert hybrid_decrypt(ciphertext, keypair.private) == b"secret query"

    def test_wrong_key_garbles(self, keypair, other_keypair):
        rng = random.Random(0)
        ciphertext = hybrid_encrypt(b"secret query", keypair.public, rng)
        assert hybrid_decrypt(ciphertext, other_keypair.private) != b"secret query"

    def test_ciphertext_hides_plaintext(self, keypair):
        rng = random.Random(0)
        ciphertext = hybrid_encrypt(b"secret query", keypair.public, rng)
        assert b"secret" not in ciphertext.body

    @settings(max_examples=20)
    @given(st.binary(max_size=512))
    def test_roundtrip_property(self, plaintext):
        keypair = generate_keypair("prop", rng=random.Random(55))
        ciphertext = hybrid_encrypt(plaintext, keypair.public, random.Random(1))
        assert hybrid_decrypt(ciphertext, keypair.private) == plaintext


class TestHmacAndChannelKeys:
    def test_hmac_verify(self):
        tag = hmac_tag(b"key", b"message")
        assert hmac_verify(b"key", b"message", tag)
        assert not hmac_verify(b"key", b"other", tag)
        assert not hmac_verify(b"other", b"message", tag)

    def test_channel_protect_roundtrip(self):
        keys = SecureChannelKeys.derive("chan", b"master")
        ciphertext, tag = keys.protect(b"flowmod", sequence=3)
        assert keys.unprotect(ciphertext, tag, sequence=3) == b"flowmod"

    def test_channel_rejects_tamper(self):
        keys = SecureChannelKeys.derive("chan", b"master")
        ciphertext, tag = keys.protect(b"flowmod", sequence=3)
        tampered = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
        with pytest.raises(ValueError):
            keys.unprotect(tampered, tag, sequence=3)

    def test_channel_rejects_replay_at_other_sequence(self):
        keys = SecureChannelKeys.derive("chan", b"master")
        ciphertext, tag = keys.protect(b"flowmod", sequence=3)
        with pytest.raises(ValueError):
            keys.unprotect(ciphertext, tag, sequence=4)

    def test_derive_is_per_channel(self):
        a = SecureChannelKeys.derive("chan-a", b"master")
        b = SecureChannelKeys.derive("chan-b", b"master")
        assert a.enc_key != b.enc_key and a.auth_key != b.auth_key
