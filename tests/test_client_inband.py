"""Tests for the client library and the in-band tester internals."""

import pytest

from repro.core.client import AuthResponder, SilentResponder
from repro.core.inband import (
    INTERCEPT_PRIORITY,
    RVAAS_COOKIE,
    RVAAS_SERVICE_IP,
    interception_matches,
)
from repro.core.protocol import (
    AuthChallenge,
    AuthReply,
    SealedResponse,
    sign_auth_reply,
    sign_challenge,
)
from repro.core.queries import GeoLocationQuery, IsolationQuery
from repro.crypto.cipher import HybridCiphertext
from repro.dataplane.topologies import isp_topology
from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.constants import RVAAS_AUTH_PORT, RVAAS_MAGIC_PORT
from repro.netlib.packet import udp_packet
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


def packet_with(payload, dport):
    return udp_packet(
        eth_src=MacAddress.from_host_index(9),
        eth_dst=MacAddress.from_host_index(8),
        ip_src=IPv4Address(1),
        ip_dst=IPv4Address(2),
        sport=dport,
        dport=dport,
        payload=payload,
    )


class TestInterceptionRules:
    def test_installed_on_every_switch(self, bed):
        for name, switch in bed.network.switches.items():
            rvaas_rules = [
                entry
                for table in switch.tables
                for entry in table.entries()
                if entry.cookie == RVAAS_COOKIE
            ]
            assert len(rvaas_rules) == len(interception_matches()), name

    def test_priority_above_everything_else(self, bed):
        for switch in bed.network.switches.values():
            for table in switch.tables:
                for entry in table.entries():
                    if entry.cookie != RVAAS_COOKIE:
                        assert entry.priority < INTERCEPT_PRIORITY


class TestClientLibrary:
    def test_handle_lifecycle(self, bed):
        client = bed.clients["alice"]
        handle = client.submit(GeoLocationQuery())
        assert not handle.done
        assert client.pending_count() == 1
        bed.run(1.0)
        assert handle.done and handle.error is None
        assert client.pending_count() == 0

    def test_callback_invoked(self, bed):
        seen = []
        bed.clients["alice"].submit(GeoLocationQuery(), on_answer=seen.append)
        bed.run(1.0)
        assert len(seen) == 1 and seen[0].done

    def test_nonces_unique(self, bed):
        client = bed.clients["alice"]
        nonces = {client.submit(GeoLocationQuery()).nonce for _ in range(5)}
        assert len(nonces) == 5
        bed.run(2.0)  # drain

    def test_forged_response_ignored(self, bed):
        """A garbage 'integrity reply' injected at the client is dropped;
        the genuine signed reply still resolves the handle."""
        client = bed.clients["alice"]
        handle = client.submit(GeoLocationQuery())
        fake = SealedResponse(
            ciphertext=HybridCiphertext(wrapped_key=1, nonce=b"x" * 12, body=b"junk"),
            signature=12345,
        )
        client.host.deliver(packet_with(fake, RVAAS_MAGIC_PORT))
        assert not handle.done
        bed.run(1.0)
        assert handle.done

    def test_non_protocol_payload_ignored(self, bed):
        client = bed.clients["alice"]
        client.host.deliver(packet_with(b"noise", RVAAS_MAGIC_PORT))
        assert client.completed == []


class TestAuthResponder:
    def test_counts_answers(self, bed):
        bed.ask("alice", IsolationQuery())
        answered = sum(
            responder.challenges_answered for responder in bed.responders.values()
        )
        assert answered == 3

    def test_rejects_unsigned_challenge(self, bed):
        """Hosts never disclose presence to unauthenticated probers."""
        responder = bed.responders["h_ber1"]
        host = bed.network.host("h_ber1")
        sent_before = host.sent_count
        bogus = AuthChallenge(nonce=1, round_id=1, service="fake", signature=7)
        host.deliver(packet_with(bogus, RVAAS_AUTH_PORT))
        assert responder.challenges_rejected == 1
        assert responder.challenges_answered == 0
        assert host.sent_count == sent_before  # no reply leaked

    def test_silent_responder_counts(self):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]),
            isolate_clients=True,
            seed=42,
            silent_hosts=["h_fra1"],
        )
        bed.ask("alice", IsolationQuery())
        assert bed.silent["h_fra1"].challenges_ignored == 1


class TestAuthRounds:
    def test_round_times_out_without_replies(self):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]),
            isolate_clients=True,
            seed=42,
            silent_hosts=["h_ber1", "h_fra1", "h_par1"],
        )
        handle = bed.ask("alice", IsolationQuery())
        auth = handle.response.answer.auth
        assert auth.requests_issued == 3
        assert auth.replies_received == 0
        assert len(auth.silent_endpoints) == 3

    def test_wrong_nonce_reply_rejected(self, bed):
        outcomes = []
        service = bed.service
        round_id = service.inband.start_round(
            (("ber", 1),), nonce=555, on_complete=outcomes.append
        )
        # h_ber1 sends a stale reply with the wrong nonce in-band.
        stale = sign_auth_reply(
            AuthReply(host="h_ber1", client="alice", nonce=999, round_id=round_id),
            bed.host_keys["h_ber1"].private,
        )
        bed.network.host("h_ber1").send_udp(
            RVAAS_SERVICE_IP, RVAAS_AUTH_PORT, stale, sport=RVAAS_AUTH_PORT
        )
        bed.run(1.0)
        assert outcomes
        outcome = outcomes[0]
        # The genuine responder still answers the real challenge, but
        # the stale-nonce injection is logged as rejected.
        assert any(host == "h_ber1" for _origin, host in outcome.rejected)

    def test_forged_host_signature_rejected(self, bed):
        outcomes = []
        service = bed.service
        round_id = service.inband.start_round(
            (("ber", 1),), nonce=555, on_complete=outcomes.append
        )
        forged = AuthReply(
            host="h_ber1", client="alice", nonce=555, round_id=round_id, signature=1
        )
        bed.network.host("h_ber1").send_udp(
            RVAAS_SERVICE_IP, RVAAS_AUTH_PORT, forged, sport=RVAAS_AUTH_PORT
        )
        bed.run(1.0)
        assert outcomes[0].rejected  # the forged-signature reply was logged

    def test_unsolicited_verified_reply_recorded(self, bed):
        """A genuine host answering from an unchallenged port is evidence
        of unexpected connectivity and is recorded separately."""
        outcomes = []
        service = bed.service
        round_id = service.inband.start_round(
            (("ber", 1),), nonce=777, on_complete=outcomes.append
        )
        volunteer = sign_auth_reply(
            AuthReply(host="h_fra1", client="alice", nonce=777, round_id=round_id),
            bed.host_keys["h_fra1"].private,
        )
        bed.network.host("h_fra1").send_udp(
            RVAAS_SERVICE_IP, RVAAS_AUTH_PORT, volunteer, sport=RVAAS_AUTH_PORT
        )
        bed.run(1.0)
        outcome = outcomes[0]
        assert any(host == "h_fra1" for _origin, host in outcome.unsolicited)

    def test_origin_is_physical_not_claimed(self, bed):
        """The endpoint evidence is the Packet-In origin port, not the
        payload's claim: a reply claiming to be h_ber1 but sent from
        h_ber2's port does not authenticate (ber, 1)."""
        outcomes = []
        service = bed.service
        round_id = service.inband.start_round(
            (("ber", 1),), nonce=888, on_complete=outcomes.append
        )
        lying = sign_auth_reply(
            AuthReply(host="h_ber1", client="alice", nonce=888, round_id=round_id),
            bed.host_keys["h_ber1"].private,
        )
        # Sent from h_ber2 (port 2), carrying h_ber1's valid signature.
        bed.network.host("h_ber2").send_udp(
            RVAAS_SERVICE_IP, RVAAS_AUTH_PORT, lying, sport=RVAAS_AUTH_PORT
        )
        bed.run(1.0)
        outcome = outcomes[0]
        # The cross-port reply never authenticates a challenged port: it
        # is recorded against its true physical origin (ber, 2).
        assert any(origin == ("ber", 2) for origin, _host in outcome.unsolicited)
        # (ber, 1) appears in verified only because h_ber1's genuine
        # responder answered the genuine challenge sent there.
        assert outcome.verified.get(("ber", 1)) == "h_ber1"
