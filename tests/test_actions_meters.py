"""Unit tests for actions and meter tables."""

import pytest

from repro.openflow.actions import (
    Drop,
    Flood,
    GotoTable,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
    output_ports,
    sends_to_controller,
)
from repro.openflow.meters import MeterBand, MeterEntry, MeterTable


class TestActionValidation:
    def test_setfield_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            SetField("ttl", 1)

    def test_pushvlan_range(self):
        with pytest.raises(ValueError):
            PushVlan(0)
        with pytest.raises(ValueError):
            PushVlan(4096)
        assert PushVlan(1).vlan_id == 1

    def test_goto_must_move_forward(self):
        with pytest.raises(ValueError):
            GotoTable(0)
        assert GotoTable(1).table_id == 1

    def test_output_ports_helper(self):
        actions = (SetField("vlan_id", 2), Output(1), Output(3), Drop())
        assert output_ports(actions) == (1, 3)

    def test_sends_to_controller_helper(self):
        assert sends_to_controller((Output(1), ToController()))
        assert not sends_to_controller((Output(1), Flood()))

    def test_actions_are_hashable_and_comparable(self):
        assert Output(1) == Output(1)
        assert len({Output(1), Output(1), Output(2)}) == 2
        assert PopVlan() == PopVlan()


class TestMeterBand:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            MeterBand(rate_kbps=0)


class TestMeterEntry:
    def test_initial_burst_allows_traffic(self):
        meter = MeterEntry(meter_id=1, band=MeterBand(rate_kbps=100, burst_kb=8))
        assert meter.allow(size_bytes=500, now=0.0)

    def test_burst_exhaustion_drops(self):
        meter = MeterEntry(meter_id=1, band=MeterBand(rate_kbps=1, burst_kb=1))
        # 1 kB burst = 8000 bits = 1000 bytes of budget at t=0.
        assert meter.allow(900, now=0.0)
        assert not meter.allow(900, now=0.0)
        assert meter.packets_dropped == 1

    def test_refill_over_time(self):
        meter = MeterEntry(meter_id=1, band=MeterBand(rate_kbps=8, burst_kb=1))
        assert meter.allow(1000, now=0.0)  # drain the bucket
        assert not meter.allow(1000, now=0.1)
        # 8 kbps for 1 s = 8000 bits = 1000 bytes.
        assert meter.allow(1000, now=1.2)

    def test_bucket_capped_at_burst(self):
        meter = MeterEntry(meter_id=1, band=MeterBand(rate_kbps=1000, burst_kb=1))
        meter.allow(1, now=100.0)  # long idle must not overfill
        assert meter.tokens_bits <= meter.band.burst_kb * 8000

    def test_counters(self):
        meter = MeterEntry(meter_id=1, band=MeterBand(rate_kbps=1, burst_kb=1))
        meter.allow(100, now=0.0)
        meter.allow(10000, now=0.0)
        assert (meter.packets_passed, meter.packets_dropped) == (1, 1)


class TestMeterTable:
    def test_add_get_remove(self):
        table = MeterTable()
        table.add(1, MeterBand(rate_kbps=100))
        assert table.get(1) is not None
        assert table.remove(1) is not None
        assert table.get(1) is None
        assert table.remove(1) is None

    def test_entries_sorted_by_id(self):
        table = MeterTable()
        table.add(5, MeterBand(rate_kbps=100))
        table.add(2, MeterBand(rate_kbps=200))
        assert [m.meter_id for m in table.entries()] == [2, 5]

    def test_signature_reflects_contents(self):
        a, b = MeterTable(), MeterTable()
        a.add(1, MeterBand(rate_kbps=100))
        assert a.signature() != b.signature()
        b.add(1, MeterBand(rate_kbps=100))
        assert a.signature() == b.signature()
