"""Tests reproducing the paper's core argument (E7): provider-trusting
verification fails under a compromised control plane, RVaaS does not."""

import pytest

from repro.attacks import (
    BlackholeAttack,
    DiversionAttack,
    ExfiltrationAttack,
    GeoViolationAttack,
    JoinAttack,
)
from repro.baselines import TracerouteVerifier, TrajectorySamplingVerifier
from repro.core.queries import IsolationQuery, PathLengthQuery
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


@pytest.fixture()
def bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=42
    )


@pytest.fixture()
def flat_bed():
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=False, seed=42
    )


class TestTracerouteBaseline:
    def test_blind_to_diversion(self, flat_bed):
        bed = flat_bed
        verifier = TracerouteVerifier(bed.provider)
        bed.provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        bed.run(0.5)
        assert not verifier.detects_attack("h_ber1", "h_fra1")

    def test_blind_to_exfiltration(self, flat_bed):
        bed = flat_bed
        verifier = TracerouteVerifier(bed.provider)
        bed.provider.compromise(ExfiltrationAttack("h_fra1", "h_off1"))
        bed.run(0.5)
        assert not verifier.detects_attack("h_ber1", "h_fra1")
        # Even the reachable-set report matches expectations (the lie).
        expected = bed.provider.report_reachable_hosts("h_fra1")
        assert verifier.check_reachable_set("h_fra1", expected)

    def test_finding_structure(self, flat_bed):
        verifier = TracerouteVerifier(flat_bed.provider)
        finding = verifier.check_path("h_ber1", "h_fra1")
        assert finding.reported_path == ("ber", "fra")
        assert not finding.suspicious

    def test_detects_only_with_external_expectation(self, flat_bed):
        """Given ground truth from elsewhere, traceroute *would* flag the
        mismatch — but under this threat model no honest source exists."""
        bed = flat_bed
        verifier = TracerouteVerifier(bed.provider)
        bed.provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        finding = verifier.check_path(
            "h_ber1", "h_fra1", expected_path=("ber", "fra", "off", "fra")
        )
        assert finding.suspicious


class TestTrajectorySamplingBaseline:
    def test_blind_to_diversion(self, flat_bed):
        bed = flat_bed
        verifier = TrajectorySamplingVerifier(bed.provider, bed.network)
        bed.provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        bed.run(0.5)
        bed.network.host("h_ber1").send_udp(
            bed.network.host("h_fra1").ip, 1000, b"x"
        )
        bed.run(0.5)
        # The packet truly crossed 'off', but the provider's reporting
        # path censors that observation.
        assert not verifier.detects_attack("h_ber1", "h_fra1")
        assert "off" not in verifier.observed_switch_set()

    def test_true_trajectory_vs_reported(self, flat_bed):
        bed = flat_bed
        verifier = TrajectorySamplingVerifier(bed.provider, bed.network)
        bed.provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        bed.run(0.5)
        bed.network.host("h_ber1").send_udp(
            bed.network.host("h_fra1").ip, 1000, b"x"
        )
        bed.run(0.5)
        true_path = verifier._true_trajectory("h_ber1", "h_fra1")
        report = verifier.collect("h_ber1", "h_fra1")
        assert "off" in true_path
        assert "off" not in report.observed_switches


class TestTrustedCollectorCounterfactual:
    """With an honest collection channel, trajectory sampling recovers
    its power for *active* flows — the paper's implied counterfactual —
    but stays blind to attacks on flows that carried no traffic."""

    def test_detects_diversion_on_active_flow(self, flat_bed):
        from repro.baselines import TrustedCollectorTrajectoryVerifier

        bed = flat_bed
        verifier = TrustedCollectorTrajectoryVerifier(bed.provider, bed.network)
        bed.provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        bed.run(0.5)
        bed.network.host("h_ber1").send_udp(
            bed.network.host("h_fra1").ip, 1000, b"x"
        )
        bed.run(0.5)
        assert verifier.detects_attack("h_ber1", "h_fra1")
        assert "off" in verifier.observed_switch_set()

    def test_blind_without_traffic_where_rvaas_is_not(self, bed):
        """A join attack never exercised by packets: sampling sees
        nothing even with a trusted collector; RVaaS's static analysis
        flags it anyway."""
        from repro.baselines import TrustedCollectorTrajectoryVerifier

        verifier = TrustedCollectorTrajectoryVerifier(bed.provider, bed.network)
        bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
        bed.run(0.5)
        # No covert traffic is ever sent.
        assert not verifier.detects_attack("h_ber2", "h_fra1")
        assert not bed.service.answer_locally("alice", IsolationQuery()).isolated


class TestRVaaSDetectsWhatBaselinesMiss:
    @pytest.mark.parametrize(
        "attack_factory, query, check",
        [
            (
                lambda: JoinAttack("h_ber2", "h_fra1"),
                IsolationQuery(),
                lambda answer: not answer.isolated,
            ),
            (
                lambda: ExfiltrationAttack("h_fra1", "h_off1"),
                IsolationQuery(),
                lambda answer: not answer.isolated,
            ),
        ],
    )
    def test_isolation_attacks(self, bed, attack_factory, query, check):
        baseline = TracerouteVerifier(bed.provider)
        bed.provider.compromise(attack_factory())
        bed.run(0.5)
        # Baseline sees nothing.
        assert not baseline.detects_attack("h_ber1", "h_fra1")
        # RVaaS does.
        assert check(bed.service.answer_locally("alice", query))

    def test_diversion_detected_by_path_length(self, flat_bed):
        bed = flat_bed
        baseline = TracerouteVerifier(bed.provider)
        bed.provider.compromise(DiversionAttack("h_ber1", "h_fra1", "off"))
        bed.run(0.5)
        assert not baseline.detects_attack("h_ber1", "h_fra1")
        answer = bed.service.answer_locally("alice", PathLengthQuery())
        assert not answer.optimal

    def test_no_false_positives_when_benign(self, bed):
        baseline = TracerouteVerifier(bed.provider)
        assert not baseline.detects_attack("h_ber1", "h_fra1")
        assert bed.service.answer_locally("alice", IsolationQuery()).isolated
